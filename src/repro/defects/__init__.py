"""Physical-defect substrate.

The paper distinguishes *physical defects* (spot defects per unit area,
driving yield via Eq. 3) from *logical faults* (stuck-at equivalents whose
count per defective chip is ``n0``), noting that "in a high-density
circuit, a physical defect can produce several logical faults".  This
package models that bridge:

* :mod:`repro.defects.layout` — an abstract floorplan placing the
  netlist's fault sites on a die grid;
* :mod:`repro.defects.generation` — spot-defect placement with gamma
  (negative-binomial) density clustering;
* :mod:`repro.defects.mapping` — defect footprint -> set of stuck-at
  faults, the fault-multiplicity law that makes ``n0 > 1``.

The hot path is array-native: the layout carries a cell-binned spatial
grid index answering whole defect arrays in one CSR-batched query, and
the mapper samples all of a chip's defects into ``(site, polarity)``
arrays while consuming random draws in the exact per-defect order of
the scalar reference path (see ``docs/fabrication.md``).
"""

from repro.defects.layout import ChipLayout
from repro.defects.generation import Defect, DefectGenerator
from repro.defects.mapping import DefectToFaultMapper
from repro.defects.sizes import (
    DefectSizeDistribution,
    InversePowerSizes,
    LogNormalSizes,
)

__all__ = [
    "ChipLayout",
    "Defect",
    "DefectGenerator",
    "DefectToFaultMapper",
    "DefectSizeDistribution",
    "InversePowerSizes",
    "LogNormalSizes",
]
