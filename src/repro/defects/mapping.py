"""Defect footprint -> stuck-at fault mapping.

A spot defect covers a disc of the die; every fault site inside the disc
is a candidate, and each candidate becomes an actual stuck-at fault with
an activation probability (not every short/break lands on silicon that
matters).  A defect touching zero sites is benign — it hit empty area.

This is the mechanism that realizes the paper's observation that one
physical defect yields several logical faults, and hence ``n0 > 1``: the
expected faults per killing defect grows with ``(radius / cell)^2``.
"""

from __future__ import annotations

from typing import Sequence

from repro.defects.generation import Defect
from repro.defects.layout import ChipLayout
from repro.faults.model import StuckAtFault
from repro.utils.rng import make_rng

__all__ = ["DefectToFaultMapper"]


class DefectToFaultMapper:
    """Maps defect sets to stuck-at fault sets on a fixed layout.

    Parameters
    ----------
    layout:
        The chip floorplan (fault-site coordinates).
    activation_probability:
        Probability that a covered site actually becomes faulty; at least
        one site is always activated for a defect that covers any sites,
        so a killing defect produces at least one fault (matching the
        paper's shifted distribution, where a defective chip has n >= 1).
    """

    def __init__(self, layout: ChipLayout, activation_probability: float = 0.7):
        if not 0.0 < activation_probability <= 1.0:
            raise ValueError(
                f"activation probability must be in (0, 1], got "
                f"{activation_probability}"
            )
        self.layout = layout
        self.activation_probability = activation_probability

    def faults_for_defect(self, defect: Defect, rng=None) -> list[StuckAtFault]:
        """Stuck-at faults induced by one defect (possibly empty)."""
        rng = make_rng(rng)
        covered = self.layout.sites_within(defect.x, defect.y, defect.radius)
        if not covered:
            return []
        keep = [i for i in covered if rng.random() < self.activation_probability]
        if not keep:
            keep = [covered[int(rng.integers(len(covered)))]]
        faults = []
        for idx in keep:
            site = self.layout.sites[idx]
            # The stuck polarity is the defect's electrical effect; model it
            # as a fair coin (shorts to VDD and GND are about equally likely).
            value = int(rng.integers(2))
            faults.append(
                StuckAtFault(site.signal, value, gate=site.gate, pin=site.pin)
            )
        return faults

    def faults_for_chip(
        self, defects: Sequence[Defect], rng=None
    ) -> list[StuckAtFault]:
        """Union of faults over a chip's defects (deduplicated, ordered).

        Two defects can hit the same site; a site cannot be stuck at both
        values, so the first polarity drawn wins — mirroring the physical
        reality that one net carries one DC state.
        """
        rng = make_rng(rng)
        chosen: dict[tuple, StuckAtFault] = {}
        for defect in defects:
            for fault in self.faults_for_defect(defect, rng):
                key = (fault.signal, fault.gate, fault.pin)
                if key not in chosen:
                    chosen[key] = fault
        return list(chosen.values())

    def expected_sites_per_defect(self, radius: float) -> float:
        """Mean fault sites covered by a defect of the given radius.

        Analytic density x footprint approximation, used to pick
        ``mean_radius`` for a target fault multiplicity.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        site_density = self.layout.num_sites / self.layout.area
        import math

        return site_density * math.pi * radius * radius
