"""Defect footprint -> stuck-at fault mapping.

A spot defect covers a disc of the die; every fault site inside the disc
is a candidate, and each candidate becomes an actual stuck-at fault with
an activation probability (not every short/break lands on silicon that
matters).  A defect touching zero sites is benign — it hit empty area.

This is the mechanism that realizes the paper's observation that one
physical defect yields several logical faults, and hence ``n0 > 1``: the
expected faults per killing defect grows with ``(radius / cell)^2``.

The hot path is array-native: :meth:`DefectToFaultMapper.site_hits_for_chip`
maps a whole chip's defect arrays to ``(site index, polarity)`` arrays in
one pass over the layout's grid index, drawing random numbers in the exact
per-defect order of the scalar reference path so fabricated chips are
bit-identical to it.  Fault *objects* are materialized only at the API
boundary (:meth:`DefectToFaultMapper.faults_for_chip`,
:attr:`repro.manufacturing.wafer.FabricatedChip.faults`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.defects.generation import Defect
from repro.defects.layout import ChipLayout
from repro.faults.model import StuckAtFault
from repro.utils.rng import make_rng

__all__ = ["DefectToFaultMapper"]

# (word >> 11) * 2^-53 is how a 64-bit generator word becomes a uniform
# double in [0, 1) — numpy's standard transformation.
_DOUBLE_SCALE = 2.0**-53
_U32_MOD = 1 << 32

# Whether the word-stream fast path reproduces this numpy's Generator
# draws bit-for-bit (None = not yet checked).  Verified once per process
# against the generic path; a numpy release that changed the Generator
# stream internals would flip this to False and quietly fall back.
_WORD_STREAM_OK: bool | None = None


def _sample_hits_words(
    site_indices: np.ndarray, bounds: list, activation: float, rng
) -> tuple[list, list]:
    """Word-stream sampler: emulate the generator's draws from raw words.

    Bulk-draws the generator's native 64-bit words once per chip and
    re-applies numpy's own transformations in plain Python — uniforms
    are ``(word >> 11) * 2^-53`` (one word each), bounded integers are
    Lemire rejection on buffered 32-bit half-words (low half first, the
    spare half carried in the generator's ``uinteger`` slot).  Consuming
    the stream this way is bit-identical to calling ``rng.random`` /
    ``rng.integers`` per defect but costs two O(words) vector ops per
    chip instead of two Generator calls per defect.  The generator is
    left in exactly the state the per-call path would leave it in
    (surplus words are returned via ``advance``; the half-word buffer is
    written back), so callers can keep drawing from it.
    """
    bit_generator = rng.bit_generator
    state = bit_generator.state
    has_half = bool(state["has_uint32"])
    half = int(state["uinteger"])
    start0 = bounds[0]
    total_covered = bounds[-1] - start0
    # Word budget: one per covered site (uniforms) plus up to one half
    # per kept site (polarities) plus slack for Lemire redraws; the
    # parse refills mid-chip if a redraw streak outruns the slack.
    drawn = total_covered + (total_covered >> 1) + 8
    words = bit_generator.random_raw(drawn)
    keep_flags = (
        ((words >> np.uint64(11)) * _DOUBLE_SCALE) < activation
    ).tolist()
    word_list = words.tolist()
    buffered = len(word_list)

    def refill(chunk):
        # Extend word_list/keep_flags/drawn/buffered together — the four
        # must stay mutually consistent for the stream emulation to hold.
        nonlocal drawn, buffered
        extra = bit_generator.random_raw(chunk)
        drawn += chunk
        word_list.extend(extra.tolist())
        keep_flags.extend(
            (((extra >> np.uint64(11)) * _DOUBLE_SCALE) < activation).tolist()
        )
        buffered = len(word_list)

    chip_sites = site_indices[start0 : bounds[-1]].tolist()
    kept: list[int] = []
    polarities: list[int] = []
    polarities_append = polarities.append
    pos = 0
    previous = start0
    for stop in bounds[1:]:
        count = stop - previous
        if count == 0:
            continue
        if pos + count + (count >> 1) + 4 > buffered:
            refill(max(pos + count + (count >> 1) + 4 - buffered, 64))
        base = previous - start0
        selected = [
            site
            for site, flag in zip(
                chip_sites[base : base + count], keep_flags[pos : pos + count]
            )
            if flag
        ]
        pos += count
        previous = stop
        if not selected:
            if count == 1:
                selected = [chip_sites[base]]
            else:
                # Lemire bounded draw on [0, count) — numpy's algorithm
                # on buffered 32-bit half-words, low half first.
                threshold = None
                while True:
                    if has_half:
                        has_half = False
                        value = half
                    else:
                        if pos >= buffered:
                            refill(64)
                        word = word_list[pos]
                        pos += 1
                        half = word >> 32
                        has_half = True
                        value = word & 0xFFFFFFFF
                    product = value * count
                    leftover = product & 0xFFFFFFFF
                    if leftover >= count:
                        break
                    if threshold is None:
                        threshold = (_U32_MOD - count) % count
                    if leftover >= threshold:
                        break
                selected = [chip_sites[base + (product >> 32)]]
        # Polarity bits: one 32-bit half per kept site, low half first —
        # i.e. bits 31 and 63 of each stream word, the spare half kept
        # in the generator's buffer slot.
        kept.extend(selected)
        remaining = len(selected)
        if has_half:
            has_half = False
            polarities_append((half >> 31) & 1)
            remaining -= 1
        if pos + (remaining >> 1) + 1 > buffered:
            # Only reachable when a Lemire redraw streak ate the
            # per-defect slack — astronomically rare, but cheap to guard.
            refill(64)
        for word in word_list[pos : pos + (remaining >> 1)]:
            polarities_append((word >> 31) & 1)
            polarities_append(word >> 63)
        pos += remaining >> 1
        if remaining & 1:
            word = word_list[pos]
            pos += 1
            polarities_append((word >> 31) & 1)
            half = word >> 32
            has_half = True

    if pos != drawn:
        bit_generator.advance(int(pos) - int(drawn))
    state = bit_generator.state
    state["has_uint32"] = int(has_half)
    state["uinteger"] = half
    bit_generator.state = state
    return kept, polarities


def _word_stream_verified() -> bool:
    """One-time differential self-check of the word-stream sampler.

    Runs both samplers on a synthetic covered-site CSR (with activation
    low enough to exercise the fallback and Lemire redraw paths) and
    requires identical hits, polarities, and *generator continuations*.
    Cheap insurance against a future numpy changing Generator stream
    internals out from under the emulation.
    """
    global _WORD_STREAM_OK
    if _WORD_STREAM_OK is None:
        sites = np.arange(24, dtype=np.intp)
        bounds = [0, 3, 3, 4, 9, 17, 24]
        ok = True
        for seed in range(4):
            for activation in (0.05, 0.7):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(seed)
                ga, pa = _sample_hits_generic(sites, bounds, activation, a)
                gb, pb = _sample_hits_words(sites, bounds, activation, b)
                ok &= list(ga) == list(gb) and list(pa) == list(pb)
                ok &= a.random(3).tolist() == b.random(3).tolist()
                ok &= a.integers(97, size=5).tolist() == b.integers(
                    97, size=5
                ).tolist()
        _WORD_STREAM_OK = ok
    return _WORD_STREAM_OK


def _sample_hits_generic(
    site_indices: np.ndarray, bounds: list, activation: float, rng
) -> tuple[np.ndarray, np.ndarray]:
    """Per-defect Generator-call sampler (any bit generator).

    The portable implementation of the sampling contract: one
    ``rng.random(covered)`` per defect, a bounded ``rng.integers`` iff
    nothing activated, one ``rng.integers(2, size=kept)`` for the
    polarities.  The word-stream path must match this bit for bit.
    """
    random = rng.random
    integers = rng.integers
    kept_chunks: list[np.ndarray] = []
    polarity_chunks: list[np.ndarray] = []
    start = bounds[0]
    for stop in bounds[1:]:
        if stop > start:
            covered = site_indices[start:stop]
            keep = covered[random(stop - start) < activation]
            if not keep.size:
                fallback = integers(stop - start)
                keep = covered[fallback : fallback + 1]
            kept_chunks.append(keep)
            polarity_chunks.append(integers(2, size=keep.size))
        start = stop
    if not kept_chunks:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.int64)
    return np.concatenate(kept_chunks), np.concatenate(polarity_chunks)


class DefectToFaultMapper:
    """Maps defect sets to stuck-at fault sets on a fixed layout.

    Parameters
    ----------
    layout:
        The chip floorplan (fault-site coordinates).
    activation_probability:
        Probability that a covered site actually becomes faulty; at least
        one site is always activated for a defect that covers any sites,
        so a killing defect produces at least one fault (matching the
        paper's shifted distribution, where a defective chip has n >= 1).
    """

    def __init__(self, layout: ChipLayout, activation_probability: float = 0.7):
        if not 0.0 < activation_probability <= 1.0:
            raise ValueError(
                f"activation probability must be in (0, 1], got "
                f"{activation_probability}"
            )
        self.layout = layout
        self.activation_probability = activation_probability

    def site_hits_for_chip(
        self, xs, ys, radii, rng=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All of a chip's defects -> deduplicated ``(site, polarity)`` arrays.

        The array-native core of the fab pipeline: one batched grid query
        covers every defect, then activation sampling, the
        at-least-one-site fallback, and the polarity draws run on NumPy
        arrays per defect, and first-polarity-wins deduplication (on the
        site's electrical key — one net carries one DC state) runs once
        over the concatenated hits.  Random draws are consumed in the
        exact order of the scalar reference path
        (:meth:`faults_for_chip_scalar`): per defect, one uniform per
        covered site in ascending site order, one bounded integer iff no
        site activated, then one polarity bit per kept site — so results
        are bit-identical to it for the same generator state.

        Returns ``(site_indices, polarities)``: aligned arrays, one entry
        per distinct faulted site, in first-hit order.
        """
        site_idx, offsets = self.layout.sites_within_many(xs, ys, radii)
        return self.draw_hits(site_idx, offsets, rng=rng)

    def draw_hits(
        self, site_indices: np.ndarray, offsets, rng=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The sampling half of :meth:`site_hits_for_chip`.

        Takes one chip's covered-site CSR — ``site_indices[offsets[d]:
        offsets[d + 1]]`` per defect ``d`` — as produced by
        :meth:`~repro.defects.layout.ChipLayout.sites_within_many`
        (``offsets`` may be any window into a larger batched query, e.g.
        one die of a whole-wafer query).  Split out so callers can batch
        the geometry across many chips while each chip's draws stay on
        its own generator.
        """
        rng = make_rng(rng)
        empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.int64))
        bounds = np.asarray(offsets).tolist()
        if len(bounds) < 2 or bounds[-1] == bounds[0]:
            return empty
        if (
            type(rng.bit_generator) is np.random.PCG64
            and _word_stream_verified()
        ):
            kept, polarities = _sample_hits_words(
                site_indices, bounds, self.activation_probability, rng
            )
            if not kept:
                return empty
            hit_sites = np.array(kept, dtype=np.intp)
            polarity_arr = np.array(polarities, dtype=np.int64)
        else:
            hit_sites, polarity_arr = _sample_hits_generic(
                site_indices, bounds, self.activation_probability, rng
            )
            if hit_sites.size == 0:
                return empty
        # First polarity wins: keep the first occurrence of each
        # electrical key, in hit order.
        keys = self.layout.site_key_ids[hit_sites]
        _, first = np.unique(keys, return_index=True)
        first.sort()
        return hit_sites[first], polarity_arr[first]

    def _materialize(
        self, site_indices: np.ndarray, polarities: np.ndarray
    ) -> list[StuckAtFault]:
        """Fault objects for ``(site, polarity)`` arrays (API boundary)."""
        return self.layout.materialize_faults(site_indices, polarities)

    def faults_for_defect(self, defect: Defect, rng=None) -> list[StuckAtFault]:
        """Stuck-at faults induced by one defect (possibly empty)."""
        rng = make_rng(rng)
        covered = self.layout.sites_within(defect.x, defect.y, defect.radius)
        if not covered:
            return []
        keep = [i for i in covered if rng.random() < self.activation_probability]
        if not keep:
            keep = [covered[int(rng.integers(len(covered)))]]
        faults = []
        for idx in keep:
            site = self.layout.sites[idx]
            # The stuck polarity is the defect's electrical effect; model it
            # as a fair coin (shorts to VDD and GND are about equally likely).
            value = int(rng.integers(2))
            faults.append(
                StuckAtFault(site.signal, value, gate=site.gate, pin=site.pin)
            )
        return faults

    def faults_for_chip(
        self, defects: Sequence[Defect], rng=None
    ) -> list[StuckAtFault]:
        """Union of faults over a chip's defects (deduplicated, ordered).

        Two defects can hit the same site; a site cannot be stuck at both
        values, so the first polarity drawn wins — mirroring the physical
        reality that one net carries one DC state.  Runs on the array
        path (:meth:`site_hits_for_chip`), bit-identical to
        :meth:`faults_for_chip_scalar`.
        """
        xs = np.array([defect.x for defect in defects], dtype=float)
        ys = np.array([defect.y for defect in defects], dtype=float)
        radii = np.array([defect.radius for defect in defects], dtype=float)
        return self._materialize(*self.site_hits_for_chip(xs, ys, radii, rng=rng))

    def faults_for_chip_scalar(
        self, defects: Sequence[Defect], rng=None
    ) -> list[StuckAtFault]:
        """Reference per-object implementation of :meth:`faults_for_chip`.

        Walks defects one at a time, each with a full-die distance scan
        and per-site scalar draws — the pre-grid hot path, retained as
        the ground truth for the differential test suite and the fab
        benchmark's serial-object baseline.
        """
        rng = make_rng(rng)
        chosen: dict[tuple, StuckAtFault] = {}
        for defect in defects:
            covered = self.layout._sites_within_scan(
                defect.x, defect.y, defect.radius
            )
            if not covered:
                continue
            keep = [
                i for i in covered if rng.random() < self.activation_probability
            ]
            if not keep:
                keep = [covered[int(rng.integers(len(covered)))]]
            for idx in keep:
                site = self.layout.sites[idx]
                value = int(rng.integers(2))
                key = (site.signal, site.gate, site.pin)
                if key not in chosen:
                    chosen[key] = StuckAtFault(
                        site.signal, value, gate=site.gate, pin=site.pin
                    )
        return list(chosen.values())

    def expected_sites_per_defect(self, radius: float) -> float:
        """Mean fault sites covered by a defect of the given radius.

        Analytic density x footprint approximation, used to pick
        ``mean_radius`` for a target fault multiplicity.  See
        :meth:`counted_sites_per_defect` for the exact counted variant.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        site_density = self.layout.num_sites / self.layout.area
        return site_density * math.pi * radius * radius

    def counted_sites_per_defect(self, radius: float, resolution: int = 64) -> float:
        """Exact (counted) mean sites covered by a defect of the given radius.

        Averages the true covered-site count over a ``resolution x
        resolution`` lattice of defect centers via one batched grid
        query — no density approximation, no edge-effect blindness.  The
        analytic :meth:`expected_sites_per_defect` overshoots near the
        die edge (footprints hang off active area); this is the ground
        truth the tests compare it against.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        step = self.layout.side / resolution
        centers = (np.arange(resolution) + 0.5) * step
        grid_x, grid_y = np.meshgrid(centers, centers)
        xs = grid_x.ravel()
        _, offsets = self.layout.sites_within_many(
            xs, grid_y.ravel(), np.full(xs.size, float(radius))
        )
        return float(np.diff(offsets).mean())
