"""Pattern packing for 64-way bit-parallel simulation.

A *pattern* is a mapping (or sequence) of 0/1 values for the primary
inputs.  The parallel simulator processes patterns in words of 64: bit
``k`` of every signal word belongs to pattern ``k`` of the block.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["WORD_BITS", "pack_patterns", "unpack_outputs"]

WORD_BITS = 64


def pack_patterns(
    input_names: Sequence[str],
    patterns: Sequence[Mapping[str, int] | Sequence[int]],
) -> dict[str, int]:
    """Pack up to 64 patterns into one word per input signal.

    Each pattern is either a dict keyed by input name or a positional
    sequence aligned with ``input_names``.  Returns ``{input_name: word}``
    where bit ``k`` of the word is that input's value in pattern ``k``.
    """
    if len(patterns) == 0:
        raise ValueError("need at least one pattern")
    if len(patterns) > WORD_BITS:
        raise ValueError(f"at most {WORD_BITS} patterns per word, got {len(patterns)}")
    words = {name: 0 for name in input_names}
    for k, pattern in enumerate(patterns):
        for i, name in enumerate(input_names):
            if isinstance(pattern, Mapping):
                try:
                    value = pattern[name]
                except KeyError:
                    raise ValueError(f"pattern {k} missing input {name!r}") from None
            else:
                if len(pattern) != len(input_names):
                    raise ValueError(
                        f"pattern {k} has {len(pattern)} values for "
                        f"{len(input_names)} inputs"
                    )
                value = pattern[i]
            if value not in (0, 1):
                raise ValueError(f"pattern {k} input {name!r}: value must be 0/1")
            if value:
                words[name] |= 1 << k
    return words


def unpack_outputs(
    output_words: Mapping[str, int], num_patterns: int
) -> list[dict[str, int]]:
    """Unpack output words back into one dict per pattern."""
    if not 1 <= num_patterns <= WORD_BITS:
        raise ValueError(f"num_patterns must be in [1, {WORD_BITS}]")
    return [
        {name: (word >> k) & 1 for name, word in output_words.items()}
        for k in range(num_patterns)
    ]
