"""Pattern packing for 64-way bit-parallel simulation.

A *pattern* is a mapping (or sequence) of 0/1 values for the primary
inputs.  The parallel simulator processes patterns in words of 64: bit
``k`` of every signal word belongs to pattern ``k`` of the block.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["WORD_BITS", "pack_patterns", "unpack_outputs", "first_detecting_bits"]

WORD_BITS = 64


def first_detecting_bits(
    detect_words: Sequence[int], num_patterns: int
) -> list[int | None]:
    """Lowest set bit of each detect word within the block, or ``None``.

    The one place the first-detect idiom lives: bits at or above
    ``num_patterns`` are masked off (they belong to zero-filled pad
    patterns), and the surviving word's lowest set bit is the block-local
    index of the first detecting pattern.  Used by the fault simulator's
    drop loop and the wafer tester's first-fail scan alike.
    """
    if not 1 <= num_patterns <= WORD_BITS:
        raise ValueError(f"num_patterns must be in [1, {WORD_BITS}]")
    mask = (1 << num_patterns) - 1
    bits: list[int | None] = []
    for word in detect_words:
        word = int(word) & mask
        bits.append((word & -word).bit_length() - 1 if word else None)
    return bits


def pack_patterns(
    input_names: Sequence[str],
    patterns: Sequence[Mapping[str, int] | Sequence[int]],
) -> dict[str, int]:
    """Pack up to 64 patterns into one word per input signal.

    Each pattern is either a dict keyed by input name or a positional
    sequence aligned with ``input_names`` (lists, tuples, and NumPy rows
    all work).  Returns ``{input_name: word}`` where bit ``k`` of the word
    is that input's value in pattern ``k``.

    Dict patterns must carry *exactly* the declared inputs: a missing key
    raises, and so does an unknown one — a typo'd input name would
    otherwise silently degrade to a stale 0 bit and corrupt every coverage
    number downstream.
    """
    if len(patterns) == 0:
        raise ValueError("need at least one pattern")
    if len(patterns) > WORD_BITS:
        raise ValueError(f"at most {WORD_BITS} patterns per word, got {len(patterns)}")
    words = {name: 0 for name in input_names}
    for k, pattern in enumerate(patterns):
        if isinstance(pattern, Mapping):
            if len(pattern) != len(words):
                unknown = sorted(set(pattern) - set(words))
                if unknown:
                    raise ValueError(
                        f"pattern {k} has unknown inputs {unknown}"
                    )
            for name in input_names:
                try:
                    value = pattern[name]
                except KeyError:
                    raise ValueError(f"pattern {k} missing input {name!r}") from None
                if value not in (0, 1):
                    raise ValueError(f"pattern {k} input {name!r}: value must be 0/1")
                if value:
                    words[name] |= 1 << k
        else:
            if len(pattern) != len(input_names):
                raise ValueError(
                    f"pattern {k} has {len(pattern)} values for "
                    f"{len(input_names)} inputs"
                )
            for i, name in enumerate(input_names):
                value = pattern[i]
                if value not in (0, 1):
                    raise ValueError(f"pattern {k} input {name!r}: value must be 0/1")
                if value:
                    words[name] |= 1 << k
    return words


def unpack_outputs(
    output_words: Mapping[str, int], num_patterns: int
) -> list[dict[str, int]]:
    """Unpack output words back into one dict per pattern."""
    if not 1 <= num_patterns <= WORD_BITS:
        raise ValueError(f"num_patterns must be in [1, {WORD_BITS}]")
    return [
        {name: (word >> k) & 1 for name, word in output_words.items()}
        for k in range(num_patterns)
    ]
