"""Shape-aware backend autotuner for the kernel engine.

``make_engine("auto")`` must pick the fastest available executor for the
workload actually flowing through it — and the right answer genuinely
depends on shape: the JIT kernel wins big on wide fault batches (hundreds
of machine rows amortize its per-row loop across cores), while tiny
blocks can sit below the kernel-dispatch break-even where the NumPy
executor's vectorized per-gate path is fine.  Guessing from first
principles would bake this machine's tradeoffs into code; measuring once
per process is cheap and always right.

So the autotuner runs a **one-time calibration probe**: the first block
of a given shape class runs on *every* available backend, the results
are asserted bit-identical (a free differential test in production), the
timings decide the winner, and the decision is cached under
``(netlist fingerprint, machine-count bucket)``.  Buckets are powers of
two — a 900-row fault batch and a 1000-row one share a decision, but a
16-row PODEM remnant batch gets its own.  Every later block of that
shape dispatches straight to the winner with a dict lookup.

The module also keeps the process-global per-backend block counters
surfaced as ``kernel_blocks_*`` in :meth:`repro.api.session.Session.stats`.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "BACKEND_BLOCKS",
    "bucket",
    "cached_decision",
    "calibrate",
    "note_block",
    "reset",
]

# Blocks executed per backend in this process, across every engine
# instance (sessions, pool workers each count their own process).
BACKEND_BLOCKS: dict[str, int] = {"numpy": 0, "jit": 0, "gpu": 0}

# (program fingerprint, row bucket) -> winning backend name.
_DECISIONS: dict[tuple[str, int], str] = {}


def bucket(num_rows: int) -> int:
    """Shape class for a machine count: the next power of two."""
    if num_rows <= 1:
        return 1
    return 1 << (num_rows - 1).bit_length()


def cached_decision(fingerprint: str, num_rows: int) -> str | None:
    """The winning backend for this shape class, if already calibrated."""
    return _DECISIONS.get((fingerprint, bucket(num_rows)))


def calibrate(
    fingerprint: str,
    num_rows: int,
    candidates: Sequence[tuple[str, Callable[[], np.ndarray]]],
) -> tuple[str, np.ndarray]:
    """Probe every candidate backend on the real block and pick a winner.

    ``candidates`` maps backend name to a thunk that evaluates the block
    from scratch and returns the full value matrix.  Each thunk runs
    twice — once untimed to absorb one-time costs (JIT compilation,
    device upload), once timed — and all results must be bit-identical
    or the probe refuses to tune.  Returns ``(winner, winner_values)``
    so the probing block's (already computed) result is reused.
    """
    key = (fingerprint, bucket(num_rows))
    if len(candidates) == 1:
        name, thunk = candidates[0]
        _DECISIONS[key] = name
        return name, thunk()
    probes: list[tuple[float, str, np.ndarray]] = []
    for name, thunk in candidates:
        thunk()  # warm-up: JIT compile / kernel cache load / H2D setup
        start = time.perf_counter()
        values = thunk()
        probes.append((time.perf_counter() - start, name, values))
    base_name, base = probes[0][1], probes[0][2]
    for _, name, values in probes[1:]:
        if not np.array_equal(base, values):
            raise RuntimeError(
                f"autotune probe: backend {name!r} disagrees with "
                f"{base_name!r} on circuit {fingerprint[:12]}"
            )
    best = min(probes, key=lambda probe: probe[0])
    _DECISIONS[key] = best[1]
    return best[1], best[2]


def note_block(backend: str) -> None:
    """Count one executed block against ``backend``."""
    BACKEND_BLOCKS[backend] += 1


def reset() -> None:
    """Test hook: forget calibration decisions and zero the counters."""
    _DECISIONS.clear()
    for name in BACKEND_BLOCKS:
        BACKEND_BLOCKS[name] = 0
