"""Kernel IR: a netlist lowered to flat, levelized arrays.

The batch engine's inner loop interprets a Python list of per-gate
tuples.  This module lowers that schedule once into a
:class:`KernelProgram` — pure ``ndarray`` state that any executor
(NumPy reference, numba JIT, CuPy) can run without touching Python
objects per gate:

* ``opcodes`` / ``invert`` — one reduction kind per gate (AND/OR/XOR/
  BUF plus an invert flag), in a *level-grouped* topological order:
  gates are sorted by logic level, then by opcode, so every gate's
  operands are produced strictly earlier in the array and independent
  gates of one level sit contiguously (the unit a data-parallel
  executor fuses into one pass);
* ``op_idx`` / ``op_ptr`` — CSR operand lists: gate ``g`` reads signal
  columns ``op_idx[op_ptr[g]:op_ptr[g + 1]]``;
* ``out_cols`` — the signal column each gate writes;
* ``level_ptr`` — gate-range per level, for executors that dispatch a
  level at a time.

Fault injection is *not* part of the program — it varies per block as
the fault simulator compacts its batch.  :class:`InjectionTables`
carries one call's stem forces and pin overrides as flat arrays in two
layouts: grouped by row (the per-machine walk a row-parallel JIT kernel
wants) and grouped by gate (the scatter a vectorized NumPy/GPU executor
wants).  Both layouts preserve insertion order among duplicates, so a
doubly-forced site resolves last-wins exactly like the NumPy fancy
assignment in :class:`~repro.simulator.batch_sim.BatchCompiledCircuit`.

The program's :attr:`~KernelProgram.fingerprint` is a content hash of
the lowered arrays.  JIT compilation caches and the autotuner's
calibration decisions key on it, so any number of sessions, server
workers, or pool processes that lower the same circuit share one
compiled kernel and one tuning verdict.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.circuit.netlist import Netlist

__all__ = [
    "KernelProgram",
    "InjectionTables",
    "lower_program",
    "OP_AND",
    "OP_OR",
    "OP_XOR",
    "OP_BUF",
]

# Opcode values match batch_sim's reduction kinds so the lowering is a
# relabeling, not a translation.
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_BUF = 3

_U64 = np.uint64


@dataclass(frozen=True)
class KernelProgram:
    """One netlist's gate schedule as flat arrays (see module docstring)."""

    num_signals: int
    input_names: tuple[str, ...]
    input_cols: np.ndarray  # int64 (num_inputs,)
    output_cols: np.ndarray  # int64 (num_outputs,)
    opcodes: np.ndarray  # int8  (num_gates,) level-grouped topo order
    invert: np.ndarray  # uint8 (num_gates,)
    op_idx: np.ndarray  # int64 (nnz,)
    op_ptr: np.ndarray  # int64 (num_gates + 1,)
    out_cols: np.ndarray  # int64 (num_gates,)
    level_ptr: np.ndarray  # int64 (num_levels + 1,)
    gate_pos: np.ndarray  # int64 (num_signals,) driving gate's position, -1 = PI
    max_fanin: int
    _fingerprint: list = field(default_factory=list, repr=False, compare=False)

    @property
    def num_gates(self) -> int:
        return int(self.opcodes.shape[0])

    @property
    def num_levels(self) -> int:
        return int(self.level_ptr.shape[0]) - 1

    @property
    def fingerprint(self) -> str:
        """Content hash of the lowered arrays (hex SHA-256).

        Two processes that lower structurally identical circuits get the
        same fingerprint — the key under which JIT dispatch caches and
        autotuner decisions are shared.
        """
        if not self._fingerprint:
            hasher = hashlib.sha256()
            for name in self.input_names:
                hasher.update(name.encode("utf-8") + b"\x1f")
            for arr in (
                self.input_cols,
                self.output_cols,
                self.opcodes,
                self.invert,
                self.op_idx,
                self.op_ptr,
                self.out_cols,
                self.level_ptr,
            ):
                hasher.update(b"\x00")
                hasher.update(np.ascontiguousarray(arr).tobytes())
            self._fingerprint.append(hasher.hexdigest())
        return self._fingerprint[0]


def lower_program(
    netlist: Netlist,
    index: dict[str, int],
    ops: Sequence[tuple[int, bool, np.ndarray, int]],
) -> KernelProgram:
    """Lower a compiled op list (``BatchCompiledCircuit._ops``) to IR.

    ``index`` maps signal names to value-matrix columns; ``ops`` is the
    per-gate ``(kind, invert, input_cols, out_col)`` schedule in plain
    topological order.  Gates are re-sorted by ``(level, kind, invert)``
    — stable, so the result is still topological — and flattened into
    the CSR arrays of a :class:`KernelProgram`.
    """
    levels = netlist.levels()
    col_level = {index[name]: level for name, level in levels.items()}
    order = sorted(
        range(len(ops)),
        key=lambda i: (col_level[ops[i][3]], ops[i][0], ops[i][1]),
    )

    num_gates = len(ops)
    opcodes = np.empty(num_gates, dtype=np.int8)
    invert = np.empty(num_gates, dtype=np.uint8)
    out_cols = np.empty(num_gates, dtype=np.int64)
    op_ptr = np.zeros(num_gates + 1, dtype=np.int64)
    op_chunks: list[np.ndarray] = []
    level_bounds: list[int] = [0]
    last_level = None
    for pos, i in enumerate(order):
        kind, inv, in_cols, out_col = ops[i]
        opcodes[pos] = kind
        invert[pos] = 1 if inv else 0
        out_cols[pos] = out_col
        op_chunks.append(in_cols.astype(np.int64, copy=False))
        op_ptr[pos + 1] = op_ptr[pos] + len(in_cols)
        level = col_level[out_col]
        if last_level is None:
            last_level = level
        elif level != last_level:
            level_bounds.append(pos)
            last_level = level
    level_bounds.append(num_gates)

    num_signals = len(index)
    gate_pos = np.full(num_signals, -1, dtype=np.int64)
    gate_pos[out_cols] = np.arange(num_gates, dtype=np.int64)

    return KernelProgram(
        num_signals=num_signals,
        input_names=tuple(netlist.inputs),
        input_cols=np.array(
            [index[name] for name in netlist.inputs], dtype=np.int64
        ),
        output_cols=np.array(
            [index[name] for name in netlist.outputs], dtype=np.int64
        ),
        opcodes=opcodes,
        invert=invert,
        op_idx=(
            np.concatenate(op_chunks)
            if op_chunks
            else np.empty(0, dtype=np.int64)
        ),
        op_ptr=op_ptr,
        out_cols=out_cols,
        level_ptr=np.array(level_bounds, dtype=np.int64),
        gate_pos=gate_pos,
        max_fanin=(
            max((len(chunk) for chunk in op_chunks), default=0)
        ),
    )


_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=_U64)


class InjectionTables:
    """One ``run_batch`` call's fault injections as flat arrays.

    Built by the engine from its per-fault record cache (see
    :class:`~repro.simulator.kernels.engine.KernelBatchCircuit`); rows
    are appended in machine order, so the raw arrays are sorted by row
    with insertion order preserved within a row.

    ``pi_*`` — primary-input stems, applied when the value matrix loads.
    ``stem_*`` — gate-output stems: after gate ``stem_gate[k]`` (a
    position in the level-grouped schedule) evaluates, row
    ``stem_row[k]`` of its output column is forced to ``stem_word[k]``.
    ``pin_*`` — operand overrides: operand ``pin_pin[k]`` of gate
    ``pin_gate[k]`` is forced to ``pin_word[k]`` on row ``pin_row[k]``
    before the gate reduces.
    """

    __slots__ = (
        "num_rows",
        "pi_row", "pi_col", "pi_word",
        "stem_row", "stem_gate", "stem_col", "stem_word",
        "pin_row", "pin_gate", "pin_pin", "pin_word",
        "_row_views", "_gate_views",
    )

    def __init__(
        self,
        num_rows: int,
        pi: tuple[list, list, list],
        stems: tuple[list, list, list, list],
        pins: tuple[list, list, list, list],
    ):
        self.num_rows = num_rows
        pi_row, pi_col, pi_word = pi
        self.pi_row = np.array(pi_row, dtype=np.int64)
        self.pi_col = np.array(pi_col, dtype=np.int64)
        self.pi_word = np.array(pi_word, dtype=_U64)
        stem_row, stem_gate, stem_col, stem_word = stems
        self.stem_row = np.array(stem_row, dtype=np.int64)
        self.stem_gate = np.array(stem_gate, dtype=np.int64)
        self.stem_col = np.array(stem_col, dtype=np.int64)
        self.stem_word = np.array(stem_word, dtype=_U64)
        pin_row, pin_gate, pin_pin, pin_word = pins
        self.pin_row = np.array(pin_row, dtype=np.int64)
        self.pin_gate = np.array(pin_gate, dtype=np.int64)
        self.pin_pin = np.array(pin_pin, dtype=np.int64)
        self.pin_word = np.array(pin_word, dtype=_U64)
        self._row_views = None
        self._gate_views = None

    # ------------------------------------------------------------- layouts

    def by_row(self):
        """Row-CSR layout for row-parallel executors (the JIT kernel).

        Returns ``(stem_ptr, stem_gate, stem_word, pin_ptr, pin_gate,
        pin_pin, pin_word)``: entries sorted by ``(row, gate[, pin])``
        with ``*_ptr[r]:*_ptr[r + 1]`` slicing row ``r``'s entries.  The
        sort is stable, so duplicate forces keep machine order and a
        sequential walk resolves them last-wins, identical to the NumPy
        scatter.
        """
        if self._row_views is None:
            s_order = np.lexsort((self.stem_gate, self.stem_row))
            s_row = self.stem_row[s_order]
            s_ptr = np.searchsorted(
                s_row, np.arange(self.num_rows + 1), side="left"
            ).astype(np.int64)
            p_order = np.lexsort((self.pin_pin, self.pin_gate, self.pin_row))
            p_row = self.pin_row[p_order]
            p_ptr = np.searchsorted(
                p_row, np.arange(self.num_rows + 1), side="left"
            ).astype(np.int64)
            self._row_views = (
                s_ptr,
                self.stem_gate[s_order],
                self.stem_word[s_order],
                p_ptr,
                self.pin_gate[p_order],
                self.pin_pin[p_order],
                self.pin_word[p_order],
            )
        return self._row_views

    def by_gate(self):
        """Per-gate scatter layout for vectorized executors.

        Returns ``(stem_by_gate, pin_by_gate)`` dicts keyed by gate
        position: ``stem_by_gate[g] = (rows, words)`` forces gate
        ``g``'s output column after it evaluates; ``pin_by_gate[g] =
        (rows, pins, words)`` patches its gathered operands first.
        Entry order within a gate is machine order, so a vectorized
        fancy assignment resolves duplicates last-wins like the
        reference engine.
        """
        if self._gate_views is None:
            stem_by_gate: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            if self.stem_row.size:
                order = np.argsort(self.stem_gate, kind="stable")
                gates = self.stem_gate[order]
                bounds = np.flatnonzero(np.diff(gates)) + 1
                for chunk in np.split(order, bounds):
                    stem_by_gate[int(self.stem_gate[chunk[0]])] = (
                        self.stem_row[chunk],
                        self.stem_word[chunk],
                    )
            pin_by_gate: dict[
                int, tuple[np.ndarray, np.ndarray, np.ndarray]
            ] = {}
            if self.pin_row.size:
                order = np.argsort(self.pin_gate, kind="stable")
                gates = self.pin_gate[order]
                bounds = np.flatnonzero(np.diff(gates)) + 1
                for chunk in np.split(order, bounds):
                    pin_by_gate[int(self.pin_gate[chunk[0]])] = (
                        self.pin_row[chunk],
                        self.pin_pin[chunk],
                        self.pin_word[chunk],
                    )
            self._gate_views = (stem_by_gate, pin_by_gate)
        return self._gate_views
