"""Kernel-backed batch engines: ``batch-jit``, ``batch-gpu``, ``auto``.

:class:`KernelBatchCircuit` is a drop-in
:class:`~repro.simulator.batch_sim.BatchCompiledCircuit` whose
``run_batch`` executes the lowered :class:`KernelProgram` through a
pluggable backend instead of interpreting the per-gate op list:

* ``numpy`` — the preallocated transposed reference executor; always
  available, and the semantic baseline for everything faster;
* ``jit`` — the numba row-parallel kernel (one compiled pass, zero
  Python per gate);
* ``gpu`` — the CuPy single-launch CUDA kernel;
* ``auto`` — per-shape autotuned choice among whichever of the above
  this process can actually run (see
  :mod:`repro.simulator.kernels.autotune`).

Requesting ``jit``/``gpu`` where numba/CuPy is missing degrades to the
NumPy executor with a one-time warning — the engine keeps working and
keeps its name, so configs are portable across differently-provisioned
machines.  ``auto`` silently uses what exists; absence of an optional
accelerator is normal there, not warning-worthy.

Because every backend consumes the same IR and the same injection
tables, a pickled engine ships **only arrays** to pool workers: numba
state lives in module globals and is recreated lazily per process
(``cache=True`` makes that a disk load after the first ever compile),
so the PR 6 wire format and PR 7 crash-recovery paths are untouched.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Sequence

import numpy as np

from repro.circuit.gates import WORD_MASK
from repro.circuit.netlist import Netlist
from repro.simulator.batch_sim import BatchCompiledCircuit, BatchEngine
from repro.simulator.kernels import autotune
from repro.simulator.kernels.gpu_exec import cupy_available, execute_gpu
from repro.simulator.kernels.ir import InjectionTables, lower_program
from repro.simulator.kernels.jit_exec import execute_jit, numba_available
from repro.simulator.kernels.numpy_exec import execute_numpy
from repro.simulator.sites import validate_fault_site

__all__ = [
    "KernelBatchCircuit",
    "JitBatchEngine",
    "GpuBatchEngine",
    "AutoBatchEngine",
    "reset_fallback_warnings",
]

_U64 = np.uint64
_ZERO = _U64(0)
_ONES = _U64(WORD_MASK)

BACKENDS = ("numpy", "jit", "gpu", "auto")

# Fault-record kinds (first element of a cached record tuple).
_REC_PI = 0  # (col, unused, word): primary-input stem, forced at load
_REC_STEM = 1  # (gate_pos, col, word): forced after the gate evaluates
_REC_PIN = 2  # (gate_pos, pin, word): operand override before reduction

_FALLBACK_WARNED: set[str] = set()


def reset_fallback_warnings() -> None:
    """Test hook: allow the one-time fallback warnings to fire again."""
    _FALLBACK_WARNED.clear()


def _warn_fallback(backend: str, message: str) -> None:
    if backend not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(backend)
        warnings.warn(message, RuntimeWarning, stacklevel=4)


class KernelBatchCircuit(BatchCompiledCircuit):
    """A batch circuit that runs the lowered kernel IR.

    Construction lowers the compiled op list once into a
    :class:`~repro.simulator.kernels.ir.KernelProgram`; per-fault
    injection records are resolved (and their sites validated) once per
    distinct fault and cached, so steady-state blocks only append
    integers into flat injection tables — the Python work per block is
    O(active faults), not O(faults × validation).
    """

    def __init__(self, netlist: Netlist, backend: str = "numpy"):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown kernel backend {backend!r}; "
                f"choose from {', '.join(BACKENDS)}"
            )
        super().__init__(netlist)
        self.backend = backend
        self.program = lower_program(netlist, self._index, self._ops)
        # StuckAtFault -> (kind, a, b, word); see _REC_* above.
        self._records: dict = {}

    # ---------------------------------------------------------- fault records

    def _fault_record(self, fault) -> tuple[int, int, int, np.uint64]:
        rec = self._records.get(fault)
        if rec is None:
            validate_fault_site(self.netlist, fault)
            word = _ONES if fault.value else _ZERO
            if fault.is_branch:
                pos = int(self.program.gate_pos[self._index[fault.gate]])
                rec = (_REC_PIN, pos, fault.pin, word)
            else:
                col = self._index[fault.signal]
                pos = int(self.program.gate_pos[col])
                if pos < 0:
                    rec = (_REC_PI, col, 0, word)
                else:
                    rec = (_REC_STEM, pos, col, word)
            self._records[fault] = rec
        return rec

    def _build_tables(self, machines: Sequence[Sequence]) -> InjectionTables:
        pi_row: list[int] = []
        pi_col: list[int] = []
        pi_word: list = []
        stem_row: list[int] = []
        stem_gate: list[int] = []
        stem_col: list[int] = []
        stem_word: list = []
        pin_row: list[int] = []
        pin_gate: list[int] = []
        pin_pin: list[int] = []
        pin_word: list = []
        record = self._fault_record
        for row, machine in enumerate(machines, start=1):
            for fault in machine:
                kind, a, b, word = record(fault)
                if kind == _REC_STEM:
                    stem_row.append(row)
                    stem_gate.append(a)
                    stem_col.append(b)
                    stem_word.append(word)
                elif kind == _REC_PIN:
                    pin_row.append(row)
                    pin_gate.append(a)
                    pin_pin.append(b)
                    pin_word.append(word)
                else:
                    pi_row.append(row)
                    pi_col.append(a)
                    pi_word.append(word)
        return InjectionTables(
            len(machines) + 1,
            (pi_row, pi_col, pi_word),
            (stem_row, stem_gate, stem_col, stem_word),
            (pin_row, pin_gate, pin_pin, pin_word),
        )

    # ------------------------------------------------------------- evaluation

    def _prefill(
        self,
        input_words: Mapping[str, int],
        tables: InjectionTables,
        num_rows: int,
        transposed: bool,
    ) -> np.ndarray:
        """A fresh value matrix with inputs and PI stems loaded.

        ``np.empty`` is safe: every column is either an input (filled
        here) or a gate output (written by its gate in schedule order).
        """
        if transposed:
            values = np.empty((self._num_signals, num_rows), dtype=_U64)
            for name, idx in zip(self._input_names, self._input_indices):
                try:
                    word = input_words[name]
                except KeyError:
                    raise ValueError(
                        f"missing input word for {name!r}"
                    ) from None
                values[idx, :] = _U64(word & WORD_MASK)
            if tables.pi_row.size:
                values[tables.pi_col, tables.pi_row] = tables.pi_word
        else:
            values = np.empty((num_rows, self._num_signals), dtype=_U64)
            for name, idx in zip(self._input_names, self._input_indices):
                try:
                    word = input_words[name]
                except KeyError:
                    raise ValueError(
                        f"missing input word for {name!r}"
                    ) from None
                values[:, idx] = _U64(word & WORD_MASK)
            if tables.pi_row.size:
                values[tables.pi_row, tables.pi_col] = tables.pi_word
        return values

    def _execute(
        self,
        backend: str,
        input_words: Mapping[str, int],
        tables: InjectionTables,
        num_rows: int,
    ) -> np.ndarray:
        """Run one block on a concrete backend; returns the value matrix
        in the canonical ``(num_rows, num_signals)`` orientation (a
        transposed view for the column-major executors)."""
        if backend == "jit":
            values = self._prefill(input_words, tables, num_rows, False)
            execute_jit(self.program, values, tables)
            return values
        values_t = self._prefill(input_words, tables, num_rows, True)
        if backend == "gpu":
            execute_gpu(self.program, values_t, tables)
        else:
            execute_numpy(self.program, values_t, tables)
        return values_t.T

    def _resolve_backend(self) -> str:
        backend = self.backend
        if backend == "jit" and not numba_available():
            _warn_fallback(
                "jit",
                "numba is not installed; engine 'batch-jit' is falling "
                "back to the NumPy kernel executor "
                "(install the 'jit' extra — pip install '.[jit]' — to "
                "enable it)",
            )
            return "numpy"
        if backend == "gpu" and not cupy_available():
            _warn_fallback(
                "gpu",
                "CuPy (or a CUDA device) is unavailable; engine "
                "'batch-gpu' is falling back to the NumPy kernel "
                "executor (install the 'gpu' extra — pip install "
                "'.[gpu]' — to enable it)",
            )
            return "numpy"
        return backend

    def _available_backends(self) -> list[str]:
        names = ["numpy"]
        if numba_available():
            names.append("jit")
        if cupy_available():
            names.append("gpu")
        return names

    def run_batch(
        self,
        input_words: Mapping[str, int],
        machines: Sequence[Sequence],
    ) -> np.ndarray:
        tables = self._build_tables(machines)
        num_rows = len(machines) + 1
        backend = self._resolve_backend()
        if backend == "auto":
            fingerprint = self.program.fingerprint
            backend = autotune.cached_decision(fingerprint, num_rows)
            if backend is None:
                candidates = [
                    (
                        name,
                        lambda name=name: self._execute(
                            name, input_words, tables, num_rows
                        ),
                    )
                    for name in self._available_backends()
                ]
                backend, values = autotune.calibrate(
                    fingerprint, num_rows, candidates
                )
                autotune.note_block(backend)
                return values
        values = self._execute(backend, input_words, tables, num_rows)
        autotune.note_block(backend)
        return values

    # --------------------------------------------------------------- pickling

    def __getstate__(self):
        # Ship the IR, not the caches: records rebuild lazily (and
        # revalidate in the worker), numba/CuPy state is module-global
        # and recreated per process.
        state = self.__dict__.copy()
        state["_records"] = {}
        return state


class _KernelEngine(BatchEngine):
    """Engine-protocol wrapper over a backend-bound kernel circuit."""

    backend = "numpy"

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.batch = KernelBatchCircuit(netlist, backend=self.backend)


class JitBatchEngine(_KernelEngine):
    """``batch-jit``: the numba row-parallel kernel (NumPy fallback)."""

    name = "batch-jit"
    backend = "jit"


class GpuBatchEngine(_KernelEngine):
    """``batch-gpu``: the CuPy CUDA kernel (NumPy fallback)."""

    name = "batch-gpu"
    backend = "gpu"


class AutoBatchEngine(_KernelEngine):
    """``auto``: calibrated per-shape choice among available backends."""

    name = "auto"
    backend = "auto"
