"""CuPy GPU executor: the gate schedule as one CUDA kernel launch.

Mirrors the numba kernel's algorithm — one thread per machine row, each
thread walking the level-grouped schedule with row-CSR injection
pointers — but as a ``cp.RawKernel`` so the whole 64-pattern block is a
single kernel launch instead of hundreds of per-gate device ops.  The
value matrix is held transposed (``(num_signals, num_rows)``), so
consecutive threads (rows) touch consecutive addresses of each signal's
row: every gate read and write is coalesced.

Entirely behind a soft import: :func:`cupy_available` is the gate, and
machines without CuPy (or without a device) fall back to the NumPy
executor at engine level.  All bitwise uint64 arithmetic is exact on
the device, so results are bit-identical to the CPU backends — the
differential suite asserts it wherever a device exists.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.kernels.ir import InjectionTables, KernelProgram

__all__ = ["cupy_available", "execute_gpu"]

try:  # soft dependency: optional GPU backend
    import cupy as cp  # type: ignore

    _HAVE_CUPY = True
except ImportError:  # pragma: no cover - exercised on CuPy-less boxes
    cp = None
    _HAVE_CUPY = False

_device_checked = False
_device_usable = False


def cupy_available() -> bool:
    """True when CuPy is importable *and* a CUDA device answers."""
    global _device_checked, _device_usable
    if not _HAVE_CUPY:
        return False
    if not _device_checked:
        _device_checked = True
        try:  # pragma: no cover - requires real GPU hardware
            cp.cuda.runtime.getDeviceCount()
            cp.asarray(np.zeros(1, dtype=np.uint64)).sum()
            _device_usable = True
        except Exception:
            _device_usable = False
    return _device_usable


_KERNEL_SOURCE = r"""
extern "C" __global__
void eval_rows(
    unsigned long long *values,        // (num_signals, num_rows) transposed
    const signed char *opcodes,
    const unsigned char *invert,
    const long long *op_idx,
    const long long *op_ptr,
    const long long *out_cols,
    const long long *stem_ptr,
    const long long *stem_gate,
    const unsigned long long *stem_word,
    const long long *pin_ptr,
    const long long *pin_gate,
    const long long *pin_pin,
    const unsigned long long *pin_word,
    const long long num_rows,
    const long long num_gates)
{
    const long long r = blockIdx.x * (long long)blockDim.x + threadIdx.x;
    if (r >= num_rows) return;
    long long s = stem_ptr[r];
    const long long s_end = stem_ptr[r + 1];
    long long p = pin_ptr[r];
    const long long p_end = pin_ptr[r + 1];
    for (long long g = 0; g < num_gates; g++) {
        const long long lo = op_ptr[g];
        const long long hi = op_ptr[g + 1];
        const int kind = opcodes[g];
        unsigned long long word = values[op_idx[lo] * num_rows + r];
        while (p < p_end && pin_gate[p] == g && pin_pin[p] == 0) {
            word = pin_word[p];
            p++;
        }
        for (long long j = lo + 1; j < hi; j++) {
            unsigned long long operand = values[op_idx[j] * num_rows + r];
            while (p < p_end && pin_gate[p] == g && pin_pin[p] == j - lo) {
                operand = pin_word[p];
                p++;
            }
            if (kind == 0)      word &= operand;   // OP_AND
            else if (kind == 1) word |= operand;   // OP_OR
            else                word ^= operand;   // OP_XOR
        }
        if (invert[g]) word = ~word;
        while (s < s_end && stem_gate[s] == g) {
            word = stem_word[s];
            s++;
        }
        values[out_cols[g] * num_rows + r] = word;
    }
}
"""

_kernel = None
_program_cache: dict[str, tuple] = {}


def _get_kernel():  # pragma: no cover - requires real GPU hardware
    global _kernel
    if _kernel is None:
        _kernel = cp.RawKernel(_KERNEL_SOURCE, "eval_rows")
    return _kernel


def _device_program(program: KernelProgram):  # pragma: no cover - GPU only
    """The program's IR arrays resident on the device, cached by
    fingerprint so repeated blocks reuse one upload per process."""
    cached = _program_cache.get(program.fingerprint)
    if cached is None:
        cached = tuple(
            cp.asarray(arr)
            for arr in (
                program.opcodes,
                program.invert,
                program.op_idx,
                program.op_ptr,
                program.out_cols,
            )
        )
        _program_cache[program.fingerprint] = cached
    return cached


def execute_gpu(
    program: KernelProgram,
    values_t: np.ndarray,
    tables: InjectionTables,
) -> None:  # pragma: no cover - requires real GPU hardware
    """Run the schedule on the device and copy the result back in place.

    ``values_t`` is the transposed ``(num_signals, num_rows)`` uint64
    matrix with inputs and primary-input stems loaded, exactly as for
    the NumPy executor.
    """
    num_rows = values_t.shape[1]
    stem_ptr, stem_gate, stem_word, pin_ptr, pin_gate, pin_pin, pin_word = (
        tables.by_row()
    )
    d_values = cp.asarray(values_t)
    d_ops = _device_program(program)
    block = 128
    grid = (num_rows + block - 1) // block
    _get_kernel()(
        (grid,),
        (block,),
        (
            d_values,
            *d_ops,
            cp.asarray(stem_ptr),
            cp.asarray(stem_gate),
            cp.asarray(stem_word),
            cp.asarray(pin_ptr),
            cp.asarray(pin_gate),
            cp.asarray(pin_pin),
            cp.asarray(pin_word),
            np.int64(num_rows),
            np.int64(program.num_gates),
        ),
    )
    cp.asnumpy(d_values, out=values_t)
