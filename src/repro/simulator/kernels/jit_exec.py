"""numba JIT executor: the whole gate schedule as one compiled kernel.

The kernel is row-parallel: a ``prange`` over machine rows, each row
evaluating the full level-grouped schedule sequentially in machine
code — zero Python dispatch inside the block loop, which is where the
interpreted engines spend most of their time at these circuit sizes.
Per-row injection state (this row's stem forces and pin overrides,
sorted by gate position) is walked with two pointers, so applying a
fault costs O(1) amortized and fault-free rows pay nothing.

The kernel body is a *plain Python function*; :func:`get_kernel` wraps
it with ``@njit(parallel=True, cache=True)`` on first use when numba is
importable.  That split buys two things:

* the exact algorithm numba compiles is unit-testable (slowly) in pure
  Python on machines without numba, so the differential suite pins its
  semantics everywhere;
* compilation happens lazily per process — a pickled engine carries
  only the IR arrays across the pool boundary, and each worker compiles
  (or loads numba's on-disk cache, keyed by this module's source) on
  first execution.

numba compiles one specialization of this kernel per process for the
fixed dtype signature below; the circuit itself is data, so every
netlist shares the same machine code.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.kernels.ir import (
    InjectionTables,
    KernelProgram,
    OP_AND,
    OP_BUF,
    OP_OR,
    OP_XOR,
)

__all__ = ["numba_available", "execute_jit", "eval_rows", "get_kernel"]

try:  # soft dependency: the engine falls back to NumPy without it
    import numba  # type: ignore

    prange = numba.prange
    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on numba-less boxes
    numba = None
    prange = range
    _HAVE_NUMBA = False


def numba_available() -> bool:
    """True when the numba JIT backend can actually compile."""
    return _HAVE_NUMBA


def eval_rows(
    values,  # uint64 (num_rows, num_signals) — inputs + PI stems loaded
    opcodes,  # int8  (num_gates,)
    invert,  # uint8 (num_gates,)
    op_idx,  # int64 (nnz,)
    op_ptr,  # int64 (num_gates + 1,)
    out_cols,  # int64 (num_gates,)
    stem_ptr,  # int64 (num_rows + 1,) row-CSR into stem_gate/stem_word
    stem_gate,  # int64
    stem_word,  # uint64
    pin_ptr,  # int64 (num_rows + 1,) row-CSR into pin_gate/pin_pin/pin_word
    pin_gate,  # int64
    pin_pin,  # int64
    pin_word,  # uint64
):
    """Evaluate every machine row in place (the JIT kernel body).

    Rows are independent machines, so the outer loop is ``prange``; the
    inner loop walks gates in level-grouped topological order.  Stem and
    pin entries for a row are pre-sorted by gate position (pins also by
    pin), so the pointer walks consume them exactly once; repeated
    forces of one site apply sequentially, i.e. last-wins, matching the
    NumPy scatter semantics bit for bit.
    """
    num_rows = values.shape[0]
    num_gates = opcodes.shape[0]
    for r in prange(num_rows):
        s = stem_ptr[r]
        s_end = stem_ptr[r + 1]
        p = pin_ptr[r]
        p_end = pin_ptr[r + 1]
        for g in range(num_gates):
            lo = op_ptr[g]
            hi = op_ptr[g + 1]
            kind = opcodes[g]
            word = values[r, op_idx[lo]]
            while p < p_end and pin_gate[p] == g and pin_pin[p] == 0:
                word = pin_word[p]
                p += 1
            for j in range(lo + 1, hi):
                operand = values[r, op_idx[j]]
                while p < p_end and pin_gate[p] == g and pin_pin[p] == j - lo:
                    operand = pin_word[p]
                    p += 1

                if kind == OP_AND:
                    word = word & operand
                elif kind == OP_OR:
                    word = word | operand
                else:  # OP_XOR (BUF gates have a single operand)
                    word = word ^ operand
            if invert[g]:
                word = ~word
            while s < s_end and stem_gate[s] == g:
                word = stem_word[s]
                s += 1
            values[r, out_cols[g]] = word


_compiled = None


def get_kernel():
    """The compiled kernel (compiling on first call), or the pure-Python
    body when numba is unavailable."""
    global _compiled
    if _compiled is None:
        if _HAVE_NUMBA:
            _compiled = numba.njit(parallel=True, cache=True)(eval_rows)
        else:
            _compiled = eval_rows
    return _compiled


def execute_jit(
    program: KernelProgram,
    values: np.ndarray,
    tables: InjectionTables,
    kernel=None,
) -> None:
    """Run the schedule on a row-major value matrix via the JIT kernel.

    ``values`` is ``(num_rows, num_signals)`` uint64 with input columns
    (and primary-input stems) already loaded.  ``kernel`` overrides the
    compiled entry point — the tests pass :func:`eval_rows` itself to
    pin the pure-Python semantics.
    """
    if kernel is None:
        kernel = get_kernel()
    stem_ptr, stem_gate, stem_word, pin_ptr, pin_gate, pin_pin, pin_word = (
        tables.by_row()
    )
    kernel(
        values,
        program.opcodes,
        program.invert,
        program.op_idx,
        program.op_ptr,
        program.out_cols,
        stem_ptr,
        stem_gate,
        stem_word,
        pin_ptr,
        pin_gate,
        pin_pin,
        pin_word,
    )
