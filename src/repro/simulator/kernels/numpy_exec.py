"""NumPy reference executor for the kernel IR.

Semantics-identical to
:meth:`repro.simulator.batch_sim.BatchCompiledCircuit.run_batch` — same
uint64 bitwise reductions, same injection resolution order — but run
over the lowered :class:`~repro.simulator.kernels.ir.KernelProgram`
with two mechanical advantages over the interpreted engine:

* the value matrix is held **transposed** — shape ``(num_signals,
  num_rows)``, one *contiguous* row per signal — so every gate's
  operand reads and output write stream through cache lines instead of
  striding across a row-major matrix;
* the accumulator and the operand-gather scratch are **preallocated
  once per call** and reused by every gate via ``out=``, so the block
  loop allocates nothing per gate.

This is both the fallback backend when numba/CuPy are absent and the
baseline the autotuner calibrates the accelerated backends against.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.kernels.ir import (
    InjectionTables,
    KernelProgram,
    OP_AND,
    OP_BUF,
    OP_OR,
    OP_XOR,
)

__all__ = ["execute_numpy"]

_UFUNC = {
    OP_AND: np.bitwise_and,
    OP_OR: np.bitwise_or,
    OP_XOR: np.bitwise_xor,
}


def execute_numpy(
    program: KernelProgram,
    values_t: np.ndarray,
    tables: InjectionTables,
) -> None:
    """Run the gate schedule in place on a transposed value matrix.

    ``values_t`` is ``(num_signals, num_rows)`` uint64 with the input
    rows (and primary-input stem forces) already loaded; on return every
    signal row holds its evaluated words.
    """
    num_rows = values_t.shape[1]
    stem_by_gate, pin_by_gate = tables.by_gate()
    acc = np.empty(num_rows, dtype=np.uint64)
    gather = (
        np.empty((program.max_fanin, num_rows), dtype=np.uint64)
        if pin_by_gate
        else None
    )
    op_idx = program.op_idx
    op_ptr = program.op_ptr
    opcodes = program.opcodes
    invert = program.invert
    out_cols = program.out_cols
    for g in range(program.num_gates):
        lo = op_ptr[g]
        hi = op_ptr[g + 1]
        kind = opcodes[g]
        override = pin_by_gate.get(g)
        if override is not None:
            rows, pins, words = override
            operands = gather[: hi - lo]
            np.take(values_t, op_idx[lo:hi], axis=0, out=operands)
            operands[pins, rows] = words
            if kind == OP_BUF:
                word = operands[0]
            else:
                word = _UFUNC[kind].reduce(operands, axis=0, out=acc)
        elif kind == OP_BUF:
            word = values_t[op_idx[lo]]
        else:
            ufunc = _UFUNC[kind]
            word = ufunc(values_t[op_idx[lo]], values_t[op_idx[lo + 1]], out=acc)
            for j in range(lo + 2, hi):
                word = ufunc(word, values_t[op_idx[j]], out=acc)
        if invert[g]:
            word = np.bitwise_not(word, out=acc if word is acc else None)
        out = out_cols[g]
        values_t[out] = word
        force = stem_by_gate.get(g)
        if force is not None:
            rows, words = force
            values_t[out, rows] = words
