"""Pluggable kernel backends for the batch engine.

The package lowers a compiled batch circuit into a flat, levelized IR
(:mod:`~repro.simulator.kernels.ir`) and executes it through
interchangeable backends — NumPy reference
(:mod:`~repro.simulator.kernels.numpy_exec`), numba JIT
(:mod:`~repro.simulator.kernels.jit_exec`), CuPy GPU
(:mod:`~repro.simulator.kernels.gpu_exec`) — with a shape-aware
autotuner (:mod:`~repro.simulator.kernels.autotune`) picking per-shape
winners for ``make_engine("auto")``.  numba and CuPy are soft
dependencies throughout; everything degrades to the NumPy executor.
"""

from repro.simulator.kernels.engine import (
    AutoBatchEngine,
    GpuBatchEngine,
    JitBatchEngine,
    KernelBatchCircuit,
    reset_fallback_warnings,
)
from repro.simulator.kernels.gpu_exec import cupy_available
from repro.simulator.kernels.ir import InjectionTables, KernelProgram, lower_program
from repro.simulator.kernels.jit_exec import numba_available

__all__ = [
    "AutoBatchEngine",
    "GpuBatchEngine",
    "JitBatchEngine",
    "KernelBatchCircuit",
    "KernelProgram",
    "InjectionTables",
    "lower_program",
    "numba_available",
    "cupy_available",
    "reset_fallback_warnings",
]
