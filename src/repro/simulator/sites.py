"""Shared stuck-at fault-site validation used by every engine.

One source of truth: the engines must diverge on speed only, never on
which fault sets they accept.  The differential suite compares their
*results*, which only means something if they reject the same bogus
inputs with the same errors — a typo'd site silently simulated as the
good machine would corrupt coverage instead of failing loudly.
"""

from __future__ import annotations

from repro.circuit.netlist import Netlist

__all__ = [
    "validate_stuck_value",
    "validate_stem_site",
    "validate_pin_site",
    "validate_fault_site",
]


def validate_stuck_value(value: int) -> None:
    if value not in (0, 1):
        raise ValueError(f"stuck value must be 0/1, got {value!r}")


def validate_stem_site(netlist: Netlist, signal: str) -> None:
    if signal not in netlist:
        raise ValueError(f"no signal named {signal!r} in {netlist.name!r}")


def validate_pin_site(netlist: Netlist, gate: str, pin: int) -> None:
    if gate not in netlist:
        raise ValueError(f"no gate named {gate!r} in {netlist.name!r}")
    arity = len(netlist.gate(gate).inputs)
    if not 0 <= pin < arity:
        raise ValueError(f"gate {gate!r} has {arity} input pins, no pin {pin}")


def validate_fault_site(netlist: Netlist, fault) -> None:
    """Validate one stuck-at fault (site attributes of
    :class:`~repro.faults.model.StuckAtFault`) against ``netlist``."""
    validate_stuck_value(fault.value)
    if fault.is_branch:
        validate_pin_site(netlist, fault.gate, fault.pin)
    else:
        validate_stem_site(netlist, fault.signal)
