"""Levelized compiled simulator, 64 patterns per word.

The netlist is compiled once into flat arrays (gate opcode, input indices,
output index, in topological order); each :meth:`CompiledCircuit.simulate`
call then evaluates every gate exactly once on 64-bit words, giving 64
patterns per pass — the classical parallel-pattern technique.

Single stuck-at faults are injected at simulation time, either on a signal
(stem fault: the word is forced to all-0s or all-1s after its driver
evaluates) or on a specific gate input pin (branch fault: only that gate
sees the forced value).  This distinction is what makes fanout-branch
faults distinct fault sites, as the stuck-at model requires.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.circuit.gates import WORD_MASK, GateType, evaluate_word
from repro.circuit.netlist import Netlist
from repro.simulator.sites import validate_pin_site, validate_stem_site, validate_stuck_value

__all__ = ["CompiledCircuit", "CompiledEngine"]

_ZERO = 0
_ONES = WORD_MASK


class CompiledCircuit:
    """A netlist compiled for fast repeated 64-way pattern evaluation."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        order = netlist.topological_order()
        self._index: dict[str, int] = {name: i for i, name in enumerate(order)}
        self._input_indices = [self._index[name] for name in netlist.inputs]
        self._input_names = list(netlist.inputs)
        self._output_indices = [self._index[name] for name in netlist.outputs]
        self._output_names = list(netlist.outputs)
        # (gate_type, (input_idx...), output_idx) for logic gates only.
        self._ops: list[tuple[GateType, tuple[int, ...], int]] = []
        for name in order:
            gate = netlist.gate(name)
            if gate.gate_type is GateType.INPUT:
                continue
            self._ops.append(
                (
                    gate.gate_type,
                    tuple(self._index[s] for s in gate.inputs),
                    self._index[name],
                )
            )
        self._num_signals = len(order)

    @property
    def num_signals(self) -> int:
        return self._num_signals

    def signal_index(self, name: str) -> int:
        """Index of a signal in the internal value array."""
        return self._index[name]

    def simulate(
        self,
        input_words: Mapping[str, int],
        stuck_signal: tuple[str, int] | None = None,
        stuck_pin: tuple[str, int, int] | None = None,
        stuck_signals: Sequence[tuple[str, int]] = (),
        stuck_pins: Sequence[tuple[str, int, int]] = (),
    ) -> dict[str, int]:
        """Evaluate 64 packed patterns; returns ``{output_name: word}``.

        ``stuck_signal=(name, v)`` forces signal ``name`` to ``v`` for every
        pattern (a stem stuck-at fault); ``stuck_pin=(gate, pin, v)`` forces
        input pin ``pin`` of ``gate`` only (a branch fault).  At most one of
        those two may be given — the *single* stuck-at API.  The plural
        ``stuck_signals`` / ``stuck_pins`` inject a whole fault set at once
        (a defective chip's multi-fault machine).
        """
        values = self.run(
            input_words, stuck_signal, stuck_pin, stuck_signals, stuck_pins
        )
        return {
            name: values[idx]
            for name, idx in zip(self._output_names, self._output_indices)
        }

    def run(
        self,
        input_words: Mapping[str, int],
        stuck_signal: tuple[str, int] | None = None,
        stuck_pin: tuple[str, int, int] | None = None,
        stuck_signals: Sequence[tuple[str, int]] = (),
        stuck_pins: Sequence[tuple[str, int, int]] = (),
    ) -> list[int]:
        """Like :meth:`simulate` but returns the full value array.

        ``stuck_signals`` / ``stuck_pins`` inject an arbitrary *set* of
        faults simultaneously — the multi-fault machine a real defective
        chip is, masking effects included.  The singular arguments remain
        the single-fault API used by the fault simulator.
        """
        if stuck_signal is not None and stuck_pin is not None:
            raise ValueError("inject at most one fault per simulation")
        all_stems = list(stuck_signals)
        all_pins = list(stuck_pins)
        if stuck_signal is not None:
            all_stems.append(stuck_signal)
        if stuck_pin is not None:
            all_pins.append(stuck_pin)

        values = [0] * self._num_signals

        for name, idx in zip(self._input_names, self._input_indices):
            try:
                word = input_words[name]
            except KeyError:
                raise ValueError(f"missing input word for {name!r}") from None
            values[idx] = word & WORD_MASK

        stem_words: dict[int, int] = {}
        for name, v in all_stems:
            validate_stuck_value(v)
            validate_stem_site(self.netlist, name)
            idx = self._index[name]
            stem_words[idx] = _ONES if v else _ZERO
            values[idx] = stem_words[idx]  # covers faults on primary inputs

        pin_words: dict[int, dict[int, int]] = {}
        for gate_name, pin_pos, v in all_pins:
            validate_stuck_value(v)
            validate_pin_site(self.netlist, gate_name, pin_pos)
            gate_idx = self._index[gate_name]
            pin_words.setdefault(gate_idx, {})[pin_pos] = _ONES if v else _ZERO

        for gate_type, in_idx, out_idx in self._ops:
            words = [values[i] for i in in_idx]
            overrides = pin_words.get(out_idx)
            if overrides:
                for pos, forced in overrides.items():
                    words[pos] = forced
            word = evaluate_word(gate_type, words)
            forced_stem = stem_words.get(out_idx)
            if forced_stem is not None:
                word = forced_stem
            values[out_idx] = word
        return values

    def output_words(self, values: list[int]) -> dict[str, int]:
        """Extract the output mapping from a :meth:`run` value array."""
        return {
            name: values[idx]
            for name, idx in zip(self._output_names, self._output_indices)
        }


class CompiledEngine:
    """Serial fault-at-a-time block engine over :class:`CompiledCircuit`.

    Satisfies the :class:`~repro.simulator.Engine` protocol.  One good
    pass plus one full resimulation per fault — the pre-batching fault
    simulator inner loop, kept as the word-level reference the batch
    engine must match bit for bit.
    """

    name = "compiled"

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.compiled = CompiledCircuit(netlist)

    def detect_block(
        self,
        input_words: Mapping[str, int],
        num_patterns: int,
        faults: Sequence,
    ) -> list[int]:
        good = self.compiled.simulate(input_words)
        detect_words: list[int] = []
        for fault in faults:
            faulty = self.compiled.simulate(
                input_words, **fault.injection_args()
            )
            word = 0
            for name, good_word in good.items():
                word |= good_word ^ faulty[name]
            detect_words.append(word)
        return detect_words
