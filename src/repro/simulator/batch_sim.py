"""Fault-parallel batched simulation on NumPy ``uint64`` arrays.

The classical parallel-pattern trick packs 64 patterns into one machine
word; this module adds the orthogonal axis and evaluates a whole *batch of
machines* simultaneously.  The netlist is compiled once into flat arrays
(opcode, input indices, output index, in topological order); a batch run
then holds signal values in a 2D array of shape ``(num_machines + 1,
num_signals)`` where

* **row 0 is the good machine**, and
* **each other row carries one machine's injected fault set** — a single
  stuck-at fault for the fault simulator, or a defective chip's whole
  multi-fault set for the wafer tester.

Each gate is evaluated exactly once per 64-pattern block for *all* rows via
vectorized bitwise ops, so the per-fault cost collapses from a full Python
resimulation to one row of a NumPy reduction.  Fault injection follows the
same semantics as :class:`~repro.simulator.parallel_sim.CompiledCircuit`:

* **stem faults** force the signal's word *after* its driver evaluates
  (primary-input stems are forced at load time) — implemented as a
  post-evaluation row mask on the signal's column;
* **pin faults** force one input pin of one sink gate only — implemented
  as a per-gate override on the gathered operand block before reduction,
  which is what makes fanout-branch faults distinct sites.

Detection is a column gather of the primary outputs: XOR every faulty row
against row 0 and OR-reduce across outputs, yielding one 64-bit detect
word per machine.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.circuit.gates import WORD_MASK, GateType
from repro.circuit.netlist import Netlist
from repro.simulator.sites import validate_fault_site

__all__ = ["BatchCompiledCircuit", "BatchEngine"]

_U64 = np.uint64
_ZERO = _U64(0)
_ONES = _U64(WORD_MASK)

# Reduction kind per gate family (the invert flag is carried separately).
_REDUCE_AND = 0
_REDUCE_OR = 1
_REDUCE_XOR = 2
_REDUCE_BUF = 3

_GATE_REDUCE = {
    GateType.BUF: (_REDUCE_BUF, False),
    GateType.NOT: (_REDUCE_BUF, True),
    GateType.AND: (_REDUCE_AND, False),
    GateType.NAND: (_REDUCE_AND, True),
    GateType.OR: (_REDUCE_OR, False),
    GateType.NOR: (_REDUCE_OR, True),
    GateType.XOR: (_REDUCE_XOR, False),
    GateType.XNOR: (_REDUCE_XOR, True),
}

_REDUCE_UFUNC = {
    _REDUCE_AND: np.bitwise_and,
    _REDUCE_OR: np.bitwise_or,
    _REDUCE_XOR: np.bitwise_xor,
}


class BatchCompiledCircuit:
    """A netlist compiled for fault-parallel, pattern-parallel evaluation.

    One instance is reusable across blocks and machine batches; only the
    value matrix and the injection index arrays are rebuilt per call.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        order = netlist.topological_order()
        self._index: dict[str, int] = {name: i for i, name in enumerate(order)}
        self._num_signals = len(order)
        self._input_names = list(netlist.inputs)
        self._input_indices = [self._index[name] for name in self._input_names]
        self._input_index_set = frozenset(self._input_indices)
        self._output_indices = np.array(
            [self._index[name] for name in netlist.outputs], dtype=np.intp
        )
        # (reduce_kind, invert, input_index_array, output_index) per gate.
        self._ops: list[tuple[int, bool, np.ndarray, int]] = []
        for name in order:
            gate = netlist.gate(name)
            if gate.gate_type is GateType.INPUT:
                continue
            kind, invert = _GATE_REDUCE[gate.gate_type]
            in_idx = np.array(
                [self._index[s] for s in gate.inputs], dtype=np.intp
            )
            out_idx = self._index[name]
            self._ops.append((kind, invert, in_idx, out_idx))
        self._max_fanin = max((len(op[2]) for op in self._ops), default=0)

    @property
    def num_signals(self) -> int:
        return self._num_signals

    def signal_index(self, name: str) -> int:
        """Index of a signal in a value matrix column."""
        return self._index[name]

    # ------------------------------------------------------- fault compiling

    def _compile_machines(
        self, machines: Sequence[Sequence]
    ) -> tuple[dict[int, tuple[np.ndarray, np.ndarray]],
               dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]]:
        """Turn per-machine fault sets into per-signal injection arrays.

        Returns ``(stem_forces, pin_overrides)``:

        * ``stem_forces[signal_idx] = (rows, words)`` — force column
          ``signal_idx`` to ``words`` on ``rows`` after it evaluates;
        * ``pin_overrides[gate_idx] = (rows, pins, words)`` — force operand
          ``pins`` of gate ``gate_idx`` to ``words`` on ``rows`` before the
          gate reduces.

        Machines are any sequences of objects with the
        :class:`~repro.faults.model.StuckAtFault` site attributes
        (``signal``, ``value``, ``is_branch``, ``gate``, ``pin``).
        """
        stems: dict[int, tuple[list[int], list[int]]] = {}
        pins: dict[int, tuple[list[int], list[int], list[int]]] = {}
        for row, machine in enumerate(machines, start=1):
            for fault in machine:
                validate_fault_site(self.netlist, fault)
                word = _ONES if fault.value else _ZERO
                if fault.is_branch:
                    gate_idx = self._index[fault.gate]
                    rows, pin_list, words = pins.setdefault(
                        gate_idx, ([], [], [])
                    )
                    rows.append(row)
                    pin_list.append(fault.pin)
                    words.append(word)
                else:
                    idx = self._index[fault.signal]
                    rows, words = stems.setdefault(idx, ([], []))
                    rows.append(row)
                    words.append(word)
        stem_forces = {
            idx: (np.array(rows, dtype=np.intp), np.array(words, dtype=_U64))
            for idx, (rows, words) in stems.items()
        }
        pin_overrides = {
            idx: (
                np.array(rows, dtype=np.intp),
                np.array(pin_list, dtype=np.intp),
                np.array(words, dtype=_U64),
            )
            for idx, (rows, pin_list, words) in pins.items()
        }
        return stem_forces, pin_overrides

    # ------------------------------------------------------------ evaluation

    def run_batch(
        self,
        input_words: Mapping[str, int],
        machines: Sequence[Sequence],
    ) -> np.ndarray:
        """Evaluate row 0 (good) plus one row per machine in ``machines``.

        ``input_words`` is one packed 64-pattern word per primary input, as
        produced by :func:`~repro.simulator.values.pack_patterns`.  Each
        machine is a sequence of stuck-at faults injected *simultaneously*
        into that machine's row.  Returns the full ``(len(machines) + 1,
        num_signals)`` value matrix.
        """
        stem_forces, pin_overrides = self._compile_machines(machines)
        num_rows = len(machines) + 1
        # Every column is either an input (filled below) or a gate output
        # (written by its gate in topological order), so empty is safe.
        values = np.empty((num_rows, self._num_signals), dtype=_U64)
        # One reduction accumulator and one operand-gather scratch are
        # reused by every gate via ``out=`` — the block loop allocates no
        # per-gate temporaries.
        acc = np.empty(num_rows, dtype=_U64)
        gather = (
            np.empty((num_rows, self._max_fanin), dtype=_U64)
            if pin_overrides
            else None
        )

        for name, idx in zip(self._input_names, self._input_indices):
            try:
                word = input_words[name]
            except KeyError:
                raise ValueError(f"missing input word for {name!r}") from None
            values[:, idx] = _U64(word & WORD_MASK)
        # Primary-input stems have no driving gate; force them at load time.
        for idx, (rows, words) in stem_forces.items():
            if idx in self._input_index_set:
                values[rows, idx] = words

        for kind, invert, in_idx, out_idx in self._ops:
            override = pin_overrides.get(out_idx)
            if override is not None:
                rows, pin_list, words = override
                operands = gather[:, : len(in_idx)]
                np.take(values, in_idx, axis=1, out=operands)
                operands[rows, pin_list] = words
                if kind == _REDUCE_BUF:
                    word = operands[:, 0]
                else:
                    word = _REDUCE_UFUNC[kind].reduce(
                        operands, axis=1, out=acc
                    )
            elif kind == _REDUCE_BUF:
                word = values[:, in_idx[0]]
            else:
                # Column-view accumulation avoids the gather on the (vastly
                # more common) gates with no pin override.
                ufunc = _REDUCE_UFUNC[kind]
                word = ufunc(values[:, in_idx[0]], values[:, in_idx[1]], out=acc)
                for j in range(2, len(in_idx)):
                    word = ufunc(word, values[:, in_idx[j]], out=acc)
            if invert:
                word = np.bitwise_not(word, out=acc)
            values[:, out_idx] = word
            force = stem_forces.get(out_idx)
            if force is not None:
                rows, words = force
                values[rows, out_idx] = words
        return values

    def detect_words(
        self,
        input_words: Mapping[str, int],
        machines: Sequence[Sequence],
    ) -> np.ndarray:
        """One 64-bit detect word per machine: bit ``k`` set iff pattern
        ``k`` of the block distinguishes that machine from the good one at
        some primary output."""
        values = self.run_batch(input_words, machines)
        outputs = values[:, self._output_indices]  # (rows, num_outputs)
        diff = outputs[1:] ^ outputs[0]
        return np.bitwise_or.reduce(diff, axis=1)

    def output_words(self, values: np.ndarray, row: int = 0) -> dict[str, int]:
        """Extract ``{output_name: word}`` for one row of a value matrix."""
        return {
            name: int(values[row, idx])
            for name, idx in zip(self.netlist.outputs, self._output_indices)
        }


class BatchEngine:
    """Fault-parallel block engine: all faults in one vectorized pass.

    Satisfies the :class:`~repro.simulator.Engine` protocol; each fault
    becomes one single-fault machine row of a
    :class:`BatchCompiledCircuit` batch.
    """

    name = "batch"

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.batch = BatchCompiledCircuit(netlist)

    def detect_block(
        self,
        input_words: Mapping[str, int],
        num_patterns: int,
        faults: Sequence,
    ) -> list[int]:
        if not faults:
            return []
        words = self.batch.detect_words(
            input_words, [(fault,) for fault in faults]
        )
        return [int(w) for w in words]
