"""Logic simulation substrate.

Three engines over the same :class:`~repro.circuit.netlist.Netlist` model,
all exchangeable behind the :class:`Engine` protocol:

* :mod:`repro.simulator.event_sim` — a scalar event-driven simulator; the
  readable reference implementation, also used to cross-check the fast
  paths (``engine="event"``).
* :mod:`repro.simulator.parallel_sim` — a levelized compiled simulator that
  packs 64 test patterns per machine word, the classical parallel-pattern
  technique used by fault simulators of the paper's era, simulating one
  fault at a time (``engine="compiled"``).
* :mod:`repro.simulator.batch_sim` — the fault-parallel batched engine: a
  NumPy ``uint64`` value matrix of shape ``(num_faults + 1, num_signals)``
  whose row 0 is the good machine and whose other rows each carry one
  injected fault set, so every gate is evaluated once per 64-pattern block
  for *all* faults at once (``engine="batch"``, the default everywhere).
* :mod:`repro.simulator.kernels` — the batch engine's schedule lowered to
  a flat kernel IR and run by pluggable backends: ``engine="batch-jit"``
  (numba, row-parallel compiled kernel), ``engine="batch-gpu"`` (CuPy,
  one CUDA launch per block), and ``engine="auto"`` (a shape-aware
  autotuner that calibrates once per process and picks the fastest
  available backend per netlist fingerprint and batch size).  numba and
  CuPy are optional; these engines degrade to a preallocated NumPy
  kernel executor when they are missing.

Anything that fault-simulates (:class:`~repro.faults.fault_sim.FaultSimulator`,
:class:`~repro.tester.tester.WaferTester`, PODEM fault dropping, the
experiment harness) accepts an ``engine`` argument — either one of the
names above or a ready :class:`Engine` instance — and routes its inner
loop through :meth:`Engine.detect_block`.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.circuit.netlist import Netlist
from repro.simulator.values import WORD_BITS, pack_patterns, unpack_outputs
from repro.simulator.event_sim import EventEngine, EventSimulator
from repro.simulator.parallel_sim import CompiledCircuit, CompiledEngine
from repro.simulator.batch_sim import BatchCompiledCircuit, BatchEngine
from repro.simulator.kernels import (
    AutoBatchEngine,
    GpuBatchEngine,
    JitBatchEngine,
    KernelBatchCircuit,
)

__all__ = [
    "WORD_BITS",
    "pack_patterns",
    "unpack_outputs",
    "EventSimulator",
    "EventEngine",
    "CompiledCircuit",
    "CompiledEngine",
    "BatchCompiledCircuit",
    "BatchEngine",
    "KernelBatchCircuit",
    "JitBatchEngine",
    "GpuBatchEngine",
    "AutoBatchEngine",
    "Engine",
    "ENGINES",
    "make_engine",
]


@runtime_checkable
class Engine(Protocol):
    """One 64-pattern block of fault simulation, however implemented.

    The fault simulator owns pattern blocking, first-detect bookkeeping,
    and fault dropping; an engine only answers the per-block question:
    *which patterns of this block detect which of these faults?*

    ``netlist`` is the circuit the engine was compiled for — required so
    :func:`make_engine` can reject an engine handed to a simulator of a
    *different* circuit, which would otherwise silently corrupt coverage.
    """

    name: str
    netlist: Netlist

    def detect_block(
        self,
        input_words: Mapping[str, int],
        num_patterns: int,
        faults: Sequence,
    ) -> Sequence[int]:
        """Detect words for ``faults`` under one packed pattern block.

        ``input_words`` maps each primary input to a 64-bit packed word
        (see :func:`pack_patterns`); ``num_patterns`` is the number of
        valid patterns in the block.  Bit ``k`` of ``result[i]`` is set
        iff pattern ``k`` detects ``faults[i]``.  Bits at or above
        ``num_patterns`` are unspecified — callers mask them off.
        """
        ...


ENGINES = {
    "batch": BatchEngine,
    "compiled": CompiledEngine,
    "event": EventEngine,
    "batch-jit": JitBatchEngine,
    "batch-gpu": GpuBatchEngine,
    "auto": AutoBatchEngine,
}


def make_engine(netlist: Netlist, engine: str | Engine = "batch") -> Engine:
    """Resolve an engine name (or pass through an instance) for ``netlist``.

    An :class:`Engine` instance is returned as-is — callers sharing one
    compiled engine across simulators pass the instance directly.  The
    instance must have been built for the *same* netlist object: detect
    words computed on a different circuit would silently corrupt every
    downstream coverage number.
    """
    if isinstance(engine, str):
        try:
            engine_cls = ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            ) from None
        return engine_cls(netlist)
    if not isinstance(engine, Engine):
        raise TypeError(
            f"engine must be a name or an Engine instance (with a "
            f"netlist attribute), got {engine!r}"
        )
    if engine.netlist is not netlist:
        raise ValueError(
            f"engine {engine.name!r} was compiled for netlist "
            f"{engine.netlist.name!r}, not {netlist.name!r}"
        )
    return engine
