"""Logic simulation substrate.

Two engines over the same :class:`~repro.circuit.netlist.Netlist` model:

* :mod:`repro.simulator.event_sim` — a scalar event-driven simulator; the
  readable reference implementation, also used to cross-check the fast path.
* :mod:`repro.simulator.parallel_sim` — a levelized compiled simulator that
  packs 64 test patterns per machine word, the classical parallel-pattern
  technique used by fault simulators of the paper's era (LAMP among them).
"""

from repro.simulator.values import pack_patterns, unpack_outputs
from repro.simulator.event_sim import EventSimulator
from repro.simulator.parallel_sim import CompiledCircuit

__all__ = [
    "pack_patterns",
    "unpack_outputs",
    "EventSimulator",
    "CompiledCircuit",
]
