"""Scalar event-driven logic simulator.

The reference engine: simple, obviously correct, and able to report
activity statistics (events per pattern).  The bit-parallel compiled
simulator is validated against it property-style in the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

from repro.circuit.gates import GateType, evaluate_word
from repro.circuit.netlist import Netlist

__all__ = ["EventSimulator"]


class EventSimulator:
    """Event-driven two-valued simulation of a combinational netlist.

    Maintains signal state between calls so that incremental input changes
    propagate with event counts proportional to the affected cone — the
    property that made event-driven simulation the workhorse of the LAMP
    era for low-activity functional patterns.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._fanout: dict[str, list[str]] = {name: [] for name in netlist.signals}
        for gate in netlist:
            for src in gate.inputs:
                self._fanout[src].append(gate.name)
        self._values: dict[str, int] = {}
        self._events_last_run = 0
        self.reset()

    def reset(self) -> None:
        """Reset all signals to 0 (inputs included) and settle the netlist."""
        self._values = {name: 0 for name in self.netlist.signals}
        for gate in self.netlist:
            if gate.gate_type is not GateType.INPUT:
                # Scalar simulation: keep only bit 0 of the word evaluation
                # (NOT of 0 is the all-ones word, but the scalar value is 1).
                self._values[gate.name] = (
                    evaluate_word(
                        gate.gate_type, [self._values[s] for s in gate.inputs]
                    )
                    & 1
                )

    @property
    def events_last_run(self) -> int:
        """Number of gate re-evaluations triggered by the last apply()."""
        return self._events_last_run

    def apply(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Apply new primary-input values and return settled output values.

        Only inputs present in ``inputs`` change; others keep their state.
        """
        queue: deque[str] = deque()
        for name, value in inputs.items():
            gate = self.netlist.gate(name)
            if gate.gate_type is not GateType.INPUT:
                raise ValueError(f"{name!r} is not a primary input")
            if value not in (0, 1):
                raise ValueError(f"input {name!r} must be 0/1, got {value!r}")
            if self._values[name] != value:
                self._values[name] = value
                queue.extend(self._fanout[name])

        events = 0
        pending = set(queue)
        while queue:
            gate_name = queue.popleft()
            pending.discard(gate_name)
            gate = self.netlist.gate(gate_name)
            new_value = (
                evaluate_word(gate.gate_type, [self._values[s] for s in gate.inputs])
                & 1
            )
            events += 1
            if new_value != self._values[gate_name]:
                self._values[gate_name] = new_value
                for sink in self._fanout[gate_name]:
                    if sink not in pending:
                        pending.add(sink)
                        queue.append(sink)
        self._events_last_run = events
        return {name: self._values[name] for name in self.netlist.outputs}

    def run_pattern(self, pattern: Mapping[str, int]) -> dict[str, int]:
        """Apply a complete pattern (value for every primary input)."""
        missing = [name for name in self.netlist.inputs if name not in pattern]
        if missing:
            raise ValueError(f"pattern missing inputs: {missing[:5]}")
        return self.apply({name: pattern[name] for name in self.netlist.inputs})

    def value(self, signal: str) -> int:
        """Current settled value of any signal."""
        return self._values[signal]
