"""Scalar event-driven logic simulator.

The reference engine: simple, obviously correct, and able to report
activity statistics (events per pattern).  The bit-parallel compiled
simulator is validated against it property-style in the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence

from repro.circuit.gates import GateType, evaluate_word
from repro.circuit.netlist import Netlist
from repro.simulator.sites import validate_fault_site
from repro.simulator.values import unpack_outputs

__all__ = ["EventSimulator", "EventEngine"]


class EventSimulator:
    """Event-driven two-valued simulation of a combinational netlist.

    Maintains signal state between calls so that incremental input changes
    propagate with event counts proportional to the affected cone — the
    property that made event-driven simulation the workhorse of the LAMP
    era for low-activity functional patterns.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._fanout: dict[str, list[str]] = {name: [] for name in netlist.signals}
        for gate in netlist:
            for src in gate.inputs:
                self._fanout[src].append(gate.name)
        self._values: dict[str, int] = {}
        self._events_last_run = 0
        self.reset()

    def reset(self) -> None:
        """Reset all signals to 0 (inputs included) and settle the netlist."""
        self._values = {name: 0 for name in self.netlist.signals}
        for gate in self.netlist:
            if gate.gate_type is not GateType.INPUT:
                # Scalar simulation: keep only bit 0 of the word evaluation
                # (NOT of 0 is the all-ones word, but the scalar value is 1).
                self._values[gate.name] = (
                    evaluate_word(
                        gate.gate_type, [self._values[s] for s in gate.inputs]
                    )
                    & 1
                )

    @property
    def events_last_run(self) -> int:
        """Number of gate re-evaluations triggered by the last apply()."""
        return self._events_last_run

    def apply(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Apply new primary-input values and return settled output values.

        Only inputs present in ``inputs`` change; others keep their state.
        """
        queue: deque[str] = deque()
        for name, value in inputs.items():
            if name not in self.netlist:
                raise ValueError(
                    f"unknown primary input {name!r} in "
                    f"{self.netlist.name!r}"
                )
            gate = self.netlist.gate(name)
            if gate.gate_type is not GateType.INPUT:
                raise ValueError(f"{name!r} is not a primary input")
            if value not in (0, 1):
                raise ValueError(f"input {name!r} must be 0/1, got {value!r}")
            if self._values[name] != value:
                self._values[name] = value
                queue.extend(self._fanout[name])

        events = 0
        pending = set(queue)
        while queue:
            gate_name = queue.popleft()
            pending.discard(gate_name)
            gate = self.netlist.gate(gate_name)
            new_value = (
                evaluate_word(gate.gate_type, [self._values[s] for s in gate.inputs])
                & 1
            )
            events += 1
            if new_value != self._values[gate_name]:
                self._values[gate_name] = new_value
                for sink in self._fanout[gate_name]:
                    if sink not in pending:
                        pending.add(sink)
                        queue.append(sink)
        self._events_last_run = events
        return {name: self._values[name] for name in self.netlist.outputs}

    def run_pattern(self, pattern: Mapping[str, int]) -> dict[str, int]:
        """Apply a complete pattern (value for every primary input)."""
        missing = [name for name in self.netlist.inputs if name not in pattern]
        if missing:
            raise ValueError(f"pattern missing inputs: {missing[:5]}")
        return self.apply({name: pattern[name] for name in self.netlist.inputs})

    def value(self, signal: str) -> int:
        """Current settled value of any signal."""
        return self._values[signal]


class EventEngine:
    """Scalar fault-at-a-time, pattern-at-a-time block engine.

    Satisfies the :class:`~repro.simulator.Engine` protocol.  The good
    machine runs on the incremental :class:`EventSimulator`; each faulty
    machine is a fresh scalar topological pass with the fault injected
    using the same semantics as the word-level engines (stem forced after
    its driver evaluates, pin forced only inside the sink gate).  Slow and
    obviously correct — the cross-check for both fast paths.
    """

    name = "event"

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._good_sim = EventSimulator(netlist)
        self._gates = list(netlist)  # topological order
        self._outputs = list(netlist.outputs)

    def _faulty_outputs(self, pattern: Mapping[str, int], fault) -> dict[str, int]:
        values: dict[str, int] = {}
        stem = None if fault.is_branch else fault.signal
        for gate in self._gates:
            if gate.gate_type is GateType.INPUT:
                value = pattern[gate.name]
            else:
                operands = [values[s] for s in gate.inputs]
                if fault.is_branch and fault.gate == gate.name:
                    operands[fault.pin] = fault.value
                value = evaluate_word(gate.gate_type, operands) & 1
            if stem == gate.name:
                value = fault.value
            values[gate.name] = value
        return {name: values[name] for name in self._outputs}

    def detect_block(
        self,
        input_words: Mapping[str, int],
        num_patterns: int,
        faults: Sequence,
    ) -> list[int]:
        for fault in faults:
            validate_fault_site(self.netlist, fault)
        patterns = unpack_outputs(input_words, num_patterns)
        detect_words = [0] * len(faults)
        for k, pattern in enumerate(patterns):
            good = self._good_sim.run_pattern(pattern)
            bit = 1 << k
            for i, fault in enumerate(faults):
                faulty = self._faulty_outputs(pattern, fault)
                if any(good[o] != faulty[o] for o in self._outputs):
                    detect_words[i] |= bit
        return detect_words
