"""Unified facade over the fab-test-estimate pipeline.

:class:`Session` is the single entry point callers should reach for: it
owns execution policy (fault-simulation engine, worker processes) and
the compile-once caches, so the rest of the code never hand-threads
``engine=`` / ``workers=`` kwargs through
:meth:`~repro.tester.program.TestProgram.build`,
:func:`~repro.manufacturing.lot.fabricate_lot`, and
:class:`~repro.tester.tester.WaferTester`::

    from repro.api import Session

    with Session(workers="auto") as session:
        chip = config.make_chip()
        lot = session.fabricate(chip, recipe, num_chips=277, seed=27)
        program = session.build_program(chip, patterns)
        result = session.test(lot, program)
        report = session.run_experiment("table1")

Results are bit-identical to the serial pipeline at every engine and
worker setting — the session changes *where* the work runs, never what
it computes.
"""

from repro.api.session import Session, aggregate_stats, resolve_session

__all__ = ["Session", "aggregate_stats", "resolve_session"]
