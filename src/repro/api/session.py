"""The :class:`Session` facade: persistent pools + compile-once caches.

A session is the long-lived runtime object the ROADMAP's service
direction calls for: one object owns the execution policy (engine name,
worker count), a **persistent** :class:`~repro.runtime.ParallelExecutor`
pool, and per-netlist caches of compiled simulation engines, so many
cheap requests — fabricate a lot, build a program, test a lot, run an
experiment — amortize one expensive setup:

* the process pool is forked once per session, not once per call;
* each compiled context (batch circuit + packed pattern blocks, or a
  pre-built wafer layout) is pickled into the workers once per session,
  keyed by a context token, instead of once per call;
* a netlist seen twice compiles once — ``build_program`` and ``test``
  share the session's per-netlist engine cache.

``Session(workers=1)`` is a zero-overhead serial facade (no pool is ever
created), which is what the deprecation shims build when legacy
``engine=`` / ``workers=`` kwargs are used.

Bounded caches
--------------

Plain sessions keep every compiled context resident until
:meth:`Session.close` — fine for a script, unbounded for the long-lived
:mod:`repro.server` process.  ``max_contexts`` / ``max_bytes`` turn the
caches into a server-grade LRU: engine, tester, and fabrication-context
entries are tracked in least-recently-used order (with their context's
pickled size when a byte budget is set), and inserting past either
budget evicts the coldest entries — dropping them from the coordinator
*and* broadcasting the eviction to the pool workers
(:meth:`~repro.runtime.ParallelExecutor.evict`), so the worker-resident
compiled arrays are actually released.  An evicted netlist seen again
simply recompiles and re-ships once; results are unaffected — eviction
changes *where bytes live*, never what is computed.
"""

from __future__ import annotations

import pickle
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.circuit.netlist import Netlist
from repro.faults.fault_sim import engine_context_token
from repro.manufacturing.lot import (
    FabricatedLot,
    _cached_fab_context,
    fabricate_lot,
)
from repro.manufacturing.process import ProcessRecipe
from repro.manufacturing.wafer import FabricatedChip
from repro.runtime import ParallelExecutor, resolve_workers
from repro.simulator import ENGINES, Engine, make_engine
from repro.simulator.kernels import autotune as kernel_autotune
from repro.tester.program import TestProgram
from repro.tester.results import LotTestResult
from repro.tester.tester import WaferTester

__all__ = ["Session", "aggregate_stats", "resolve_session"]


def aggregate_stats(stats_dicts: Iterable[dict[str, int]]) -> dict[str, int]:
    """Key-wise sum of :meth:`Session.stats` dicts across many sessions.

    Every ``Session.stats()`` value is a summable integer counter or
    gauge, so a fleet of sessions (the gateway's scheduler, a test
    harness pool) aggregates by plain addition — including sessions that
    have since closed, whose final stats were snapshotted.  Keys absent
    from some dicts (older snapshots) simply contribute nothing.
    """
    total: dict[str, int] = {}
    for stats in stats_dicts:
        for key, value in stats.items():
            total[key] = total.get(key, 0) + value
    return total


def _payload_nbytes(obj: Any) -> int:
    """Approximate context size as its pickled length.

    This is exactly the byte count that travels to a pool worker when
    the context ships, which makes it the honest unit for a
    ``max_bytes`` budget.  Unpicklable objects (none in this codebase's
    hot path) account as zero rather than failing the cache.
    """
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclass
class _CacheEntry:
    """One LRU slot: a compiled engine, tester, or fabrication context."""

    kind: str  # "engine" | "tester" | "fab"
    obj: Any
    token: Hashable
    nbytes: int
    # Testers are keyed by id(program); the anchor pins the program so
    # the id stays stable (and correct) for the entry's lifetime.
    anchor: Any = field(default=None, repr=False)


class Session:
    """Unified entry point for the fab-test-estimate pipeline.

    Parameters
    ----------
    engine:
        Fault-simulation engine name for everything the session runs:
        ``"batch"`` (default), ``"compiled"``, or ``"event"``.
    workers:
        Worker processes for the sharded stages: an integer, ``"auto"``
        (one per visible CPU, the default), or ``1`` for a fully serial
        session that never forks.
    max_contexts:
        Upper bound on resident compiled contexts (engines + testers),
        LRU-evicted.  ``None`` (default) means unbounded — the
        pre-server behavior.
    max_bytes:
        Upper bound on the summed pickled size of resident contexts,
        LRU-evicted.  The most recently used entry is never evicted, so
        a single context larger than the budget still works (and is
        evicted as soon as something else displaces it).
    dispatch_timeout:
        Watchdog deadline in seconds for each pool dispatch — the
        defense against *hung* (not dead) workers; see
        :class:`~repro.runtime.WorkerTimeoutError`.  ``None`` (default)
        reads ``REPRO_DISPATCH_TIMEOUT``; unset/<=0 disables the
        watchdog.

    Contracts
    ---------
    **Compile-once.**  A netlist is compiled at most once between
    evictions; repeated ``build_program`` / ``test`` calls reuse the
    compiled arrays, and a persistent pool receives each compiled
    context exactly once per residency (token-keyed shipping — see
    :meth:`~repro.runtime.ParallelExecutor.map_shards`).

    **Determinism.**  Results are bit-identical across engines, worker
    counts, pool lifecycles, and evictions: the session changes *where*
    the work runs and *which bytes stay resident*, never what is
    computed.

    **Lifecycle.**  Sessions are context managers; :meth:`close` tears
    down the worker pool and drops the caches, and any later call
    raises ``RuntimeError``.  A crashed pool worker is healed
    transparently (the executor re-ships the affected context and
    retries); see :class:`~repro.runtime.WorkerCrashError`.
    """

    def __init__(
        self,
        engine: str = "batch",
        workers: int | str = "auto",
        max_contexts: int | None = None,
        max_bytes: int | None = None,
        dispatch_timeout: float | None = None,
    ):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            )
        for name, bound in (("max_contexts", max_contexts), ("max_bytes", max_bytes)):
            if bound is not None and (
                isinstance(bound, bool) or not isinstance(bound, int) or bound < 1
            ):
                raise ValueError(f"{name} must be a positive integer or None, got {bound!r}")
        self.engine = engine
        self.num_workers = resolve_workers(workers)
        self.max_contexts = max_contexts
        self.max_bytes = max_bytes
        self._executor = ParallelExecutor(
            self.num_workers,
            persistent=True,
            dispatch_timeout=dispatch_timeout,
        )
        # One LRU over both cache kinds: keys are ("engine", netlist)
        # and ("tester", id(program)); most recently used at the end.
        self._contexts: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._resident_bytes = 0
        self._engine_compiles = 0
        self._evictions = 0
        self._closed = False

    # ------------------------------------------------------------ lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def executor(self) -> ParallelExecutor:
        """The session's persistent executor (for runtime-level callers)."""
        return self._executor

    def close(self) -> None:
        """Tear down the worker pool and drop the caches (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.close()
        self._contexts.clear()
        self._resident_bytes = 0

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # --------------------------------------------------------------- caches

    def _touch(self, key: tuple) -> _CacheEntry | None:
        """Look up an LRU entry, marking it most recently used."""
        entry = self._contexts.get(key)
        if entry is not None:
            self._contexts.move_to_end(key)
        return entry

    def _insert(self, key: tuple, entry: _CacheEntry) -> None:
        """Insert an entry as most recently used and enforce the budgets."""
        self._contexts[key] = entry
        self._contexts.move_to_end(key)
        self._resident_bytes += entry.nbytes
        while len(self._contexts) > 1 and (
            (self.max_contexts is not None and len(self._contexts) > self.max_contexts)
            or (self.max_bytes is not None and self._resident_bytes > self.max_bytes)
        ):
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        """Evict the LRU entry — coordinator dict *and* pool workers."""
        _key, entry = self._contexts.popitem(last=False)
        self._resident_bytes -= entry.nbytes
        self._executor.evict(entry.token)
        self._evictions += 1

    def _payload_nbytes_if_budgeted(self, obj: Any) -> int:
        """Context size for the byte budget — skipped when unbudgeted.

        Pickling a compiled context just to weigh it is pure overhead
        for the (default) unbounded session, so sizes are recorded only
        when ``max_bytes`` is set.
        """
        return _payload_nbytes(obj) if self.max_bytes is not None else 0

    def _cached_engine(self, netlist: Netlist) -> Engine | None:
        """The resident compiled engine for ``netlist``, if any (no touch)."""
        entry = self._contexts.get(("engine", netlist))
        return None if entry is None else entry.obj

    def _engine_for(self, netlist: Netlist) -> Engine:
        """The compiled engine for ``netlist`` — compile once per residency.

        A cache hit refreshes the entry's LRU position; a miss compiles,
        mints the engine's stable context token (so a later eviction can
        reach the pool workers), and may evict colder entries.
        """
        key = ("engine", netlist)
        entry = self._touch(key)
        if entry is not None:
            return entry.obj
        engine = make_engine(netlist, self.engine)
        self._engine_compiles += 1
        self._insert(
            key,
            _CacheEntry(
                kind="engine",
                obj=engine,
                token=engine_context_token(engine),
                nbytes=self._payload_nbytes_if_budgeted(engine),
            ),
        )
        return engine

    def _tester_for(self, program: TestProgram) -> WaferTester:
        """The cached tester for ``program``, sharing compiled circuits.

        Keyed by program identity (a :class:`TestProgram` carries a
        NumPy curve, so it is not hashable); the entry anchors the
        program so the id stays stable while cached.  The tester's shard
        context (compiled circuit + packed pattern blocks) is what ships
        to the pool, so its pickled size is what the byte budget counts.
        """
        key = ("tester", id(program))
        entry = self._touch(key)
        if entry is not None and entry.anchor is program:
            return entry.obj
        engine = self._engine_for(program.netlist)
        tester = WaferTester(
            program,
            engine=self.engine,
            executor=self._executor,
            batch_circuit=getattr(engine, "batch", None),
            compiled_circuit=getattr(engine, "compiled", None),
        )
        self._insert(
            key,
            _CacheEntry(
                kind="tester",
                obj=tester,
                token=tester._context_token,
                nbytes=self._payload_nbytes_if_budgeted(
                    tester._lot_shard_context()
                ),
                anchor=program,
            ),
        )
        return tester

    def stats(self) -> dict[str, int]:
        """Cache/pool observability counters.

        ``cached_netlists`` / ``cached_testers`` / ``cached_fab_contexts``
            Resident LRU entries of each kind.
        ``engine_compiles``
            Netlist compilations since the session opened — the
            compile-once observable (an evicted netlist seen again
            raises it by one).
        ``contexts_shipped`` / ``contexts_evicted``
            Context broadcasts to / removals from the persistent pool.
        ``evictions``
            LRU entries dropped by the ``max_contexts``/``max_bytes``
            budgets.
        ``resident_bytes``
            Summed pickled size of the resident contexts (tracked only
            when ``max_bytes`` is set; 0 otherwise).
        ``worker_recoveries``
            Crashed-worker re-install/retry cycles the executor healed.
        ``retries`` / ``timeouts`` / ``quarantined_shards``
            Resilience counters: dispatches retried after a crash or
            watchdog timeout, watchdog deadline expirations (hung
            workers), and poison-shard fingerprints currently
            quarantined (see
            :class:`~repro.runtime.PoisonShardError`).
        ``segments_reaped``
            Orphaned worker shared-memory segments unlinked during
            crash-recovery pool teardowns (results a failed dispatch
            discarded before the coordinator could adopt them).
        ``chaos_injections``
            Faults the active :mod:`repro.chaos` schedule has fired
            across every process (0 when no schedule is installed).
        ``kernel_blocks_numpy`` / ``kernel_blocks_jit`` / ``kernel_blocks_gpu``
            64-pattern blocks the kernel engines (``batch-jit``,
            ``batch-gpu``, ``auto``) executed per backend in *this*
            process — which backend is actually doing the work, visible
            per session and through the gateway ``/metrics``.  Like
            ``chaos_injections`` these are process-global, so the
            gateway scheduler counts them once, not per lane.
        ``ipc_bytes_out`` / ``ipc_bytes_in``
            Payload bytes the session's pool shipped to / received from
            its workers (wire-format frames: contexts, shard tasks,
            shard results).
        ``dispatches`` / ``pool_workers``
            Non-empty shard dispatches the session's executor served,
            and its configured worker count — the per-session pool
            accounting :func:`aggregate_stats` sums across a scheduler
            fleet.
        """
        from repro import chaos

        schedule = chaos.active_schedule()
        kinds = [entry.kind for entry in self._contexts.values()]
        return {
            "cached_netlists": kinds.count("engine"),
            "cached_testers": kinds.count("tester"),
            "cached_fab_contexts": kinds.count("fab"),
            "engine_compiles": self._engine_compiles,
            "contexts_shipped": self._executor.contexts_shipped,
            "contexts_evicted": self._executor.contexts_evicted,
            "evictions": self._evictions,
            "resident_bytes": self._resident_bytes,
            "worker_recoveries": self._executor.worker_recoveries,
            "retries": self._executor.dispatch_retries,
            "timeouts": self._executor.timeouts,
            "quarantined_shards": self._executor.quarantined_shards,
            "segments_reaped": self._executor.segments_reaped,
            "chaos_injections": (
                0 if schedule is None else schedule.total_injections()
            ),
            "kernel_blocks_numpy": kernel_autotune.BACKEND_BLOCKS["numpy"],
            "kernel_blocks_jit": kernel_autotune.BACKEND_BLOCKS["jit"],
            "kernel_blocks_gpu": kernel_autotune.BACKEND_BLOCKS["gpu"],
            "ipc_bytes_out": self._executor.ipc_bytes_out,
            "ipc_bytes_in": self._executor.ipc_bytes_in,
            "dispatches": self._executor.dispatches,
            "pool_workers": self._executor.num_workers,
        }

    # ------------------------------------------------------------- pipeline

    def fabricate(
        self,
        netlist: Netlist,
        recipe: ProcessRecipe,
        num_chips: int,
        dies_per_wafer: int = 100,
        seed=None,
    ) -> FabricatedLot:
        """Fabricate a lot of ``num_chips`` dies through the session pool.

        Wafer layouts are levelized once per (netlist, recipe, dies) and
        shipped to the pool workers once per residency; the fabrication
        shard context participates in the session's LRU like engines
        and testers, so ``max_contexts`` / ``max_bytes`` bound it in the
        workers too.  Fabrication runs on the array-native path (grid
        index + SoA chips — see ``docs/fabrication.md``), with shard
        workers returning compact array payloads rather than pickled
        object trees; the lot is bit-identical to
        :func:`~repro.manufacturing.lot.fabricate_lot` at any worker
        count.
        """
        self._check_open()
        # Track the fab shard context (pre-built wafer + token, cached
        # by the manufacturing layer) as an LRU entry so the budgets
        # also bound worker-resident fabrication contexts.
        key = ("fab", netlist, recipe, dies_per_wafer)
        if self._touch(key) is None:
            context, token = _cached_fab_context(
                netlist, recipe, dies_per_wafer
            )
            self._insert(
                key,
                _CacheEntry(
                    kind="fab",
                    obj=context,
                    token=token,
                    nbytes=self._payload_nbytes_if_budgeted(context),
                ),
            )
        return fabricate_lot(
            netlist,
            recipe,
            num_chips,
            dies_per_wafer=dies_per_wafer,
            seed=seed,
            executor=self._executor,
        )

    def build_program(
        self,
        netlist: Netlist,
        patterns: Sequence[Mapping[str, int]],
        collapse: bool = True,
    ) -> TestProgram:
        """Fault-simulate ``patterns`` into a :class:`TestProgram`.

        The simulation engine is compiled once per netlist per residency
        (see the class docstring for the eviction contract); repeated
        builds on one netlist reuse the compiled arrays and the session
        pool, and the compiled engine ships to the pool workers once —
        only the packed pattern blocks travel per call.
        """
        self._check_open()
        return TestProgram.build(
            netlist,
            patterns,
            collapse=collapse,
            engine=self._engine_for(netlist),
            executor=self._executor,
        )

    def test(
        self,
        lot: FabricatedLot | Sequence[FabricatedChip],
        program: TestProgram,
    ) -> LotTestResult:
        """First-fail test a lot (or bare chip list) against ``program``.

        The tester — compiled circuit plus packed pattern blocks — is
        cached per program, so N small lots through one session ship the
        compiled context to the pool once, then only the chip shards
        travel.
        """
        self._check_open()
        chips = lot.chips if isinstance(lot, FabricatedLot) else tuple(lot)
        tester = self._tester_for(program)
        return LotTestResult(
            program=program, records=tuple(tester.test_lot(chips))
        )

    def run_experiment(self, name: str) -> str:
        """Run one named paper experiment through this session.

        Returns the rendered report; see
        :data:`repro.experiments.runner.EXPERIMENTS` for the names.
        """
        self._check_open()
        # Imported lazily: the experiments packages themselves import
        # repro.api for their session parameters.
        from repro.experiments.runner import run_experiment

        return run_experiment(name, session=self)


@contextmanager
def resolve_session(
    session: Session | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
    owner: str = "this function",
) -> Iterator[Session]:
    """Yield the caller's session, or a throwaway one built from kwargs.

    The single deprecation shim behind every migrated call site: passing
    ``session`` uses it as-is (and never closes it); passing the legacy
    ``engine=`` / ``workers=`` kwargs instead emits a
    :class:`DeprecationWarning` and wraps them in a short-lived session
    that is closed on exit; passing neither yields a serial throwaway
    session, preserving the historical serial-by-default behavior.
    """
    if session is not None:
        if engine is not None or workers is not None:
            raise TypeError(
                f"{owner} takes either session= or the deprecated "
                f"engine=/workers= kwargs, not both"
            )
        yield session
        return
    if engine is not None or workers is not None:
        warnings.warn(
            f"passing engine=/workers= to {owner} is deprecated; pass "
            f"session=repro.api.Session(engine=..., workers=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    throwaway = Session(
        engine="batch" if engine is None else engine,
        workers=1 if workers is None else workers,
    )
    try:
        yield throwaway
    finally:
        throwaway.close()
