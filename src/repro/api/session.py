"""The :class:`Session` facade: persistent pools + compile-once caches.

A session is the long-lived runtime object the ROADMAP's service
direction calls for: one object owns the execution policy (engine name,
worker count), a **persistent** :class:`~repro.runtime.ParallelExecutor`
pool, and per-netlist caches of compiled simulation engines, so many
cheap requests — fabricate a lot, build a program, test a lot, run an
experiment — amortize one expensive setup:

* the process pool is forked once per session, not once per call;
* each compiled context (batch circuit + packed pattern blocks, or a
  pre-built wafer layout) is pickled into the workers once per session,
  keyed by a context token, instead of once per call;
* a netlist seen twice compiles once — ``build_program`` and ``test``
  share the session's per-netlist engine cache.

``Session(workers=1)`` is a zero-overhead serial facade (no pool is ever
created), which is what the deprecation shims build when legacy
``engine=`` / ``workers=`` kwargs are used.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from repro.circuit.netlist import Netlist
from repro.manufacturing.lot import FabricatedLot, fabricate_lot
from repro.manufacturing.process import ProcessRecipe
from repro.manufacturing.wafer import FabricatedChip
from repro.runtime import ParallelExecutor, resolve_workers
from repro.simulator import ENGINES, Engine, make_engine
from repro.tester.program import TestProgram
from repro.tester.results import LotTestResult
from repro.tester.tester import WaferTester

__all__ = ["Session", "resolve_session"]


class Session:
    """Unified entry point for the fab-test-estimate pipeline.

    Parameters
    ----------
    engine:
        Fault-simulation engine name for everything the session runs:
        ``"batch"`` (default), ``"compiled"``, or ``"event"``.
    workers:
        Worker processes for the sharded stages: an integer, ``"auto"``
        (one per visible CPU, the default), or ``1`` for a fully serial
        session that never forks.

    Sessions are context managers; :meth:`close` tears down the worker
    pool and drops the caches.  All results are bit-identical across
    engines and worker counts.
    """

    def __init__(self, engine: str = "batch", workers: int | str = "auto"):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            )
        self.engine = engine
        self.num_workers = resolve_workers(workers)
        self._executor = ParallelExecutor(self.num_workers, persistent=True)
        self._engines: dict[Netlist, Engine] = {}
        # Testers keyed by program identity (TestProgram carries a NumPy
        # curve, so it is not hashable); the program reference in the
        # value keeps the id stable for the session's lifetime.
        self._testers: dict[int, tuple[TestProgram, WaferTester]] = {}
        self._closed = False

    # ------------------------------------------------------------ lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def executor(self) -> ParallelExecutor:
        """The session's persistent executor (for runtime-level callers)."""
        return self._executor

    def close(self) -> None:
        """Tear down the worker pool and drop the caches (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.close()
        self._engines.clear()
        self._testers.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # --------------------------------------------------------------- caches

    def _engine_for(self, netlist: Netlist) -> Engine:
        """The compiled engine for ``netlist`` — compile once per session."""
        engine = self._engines.get(netlist)
        if engine is None:
            engine = make_engine(netlist, self.engine)
            self._engines[netlist] = engine
        return engine

    def _tester_for(self, program: TestProgram) -> WaferTester:
        """The cached tester for ``program``, sharing compiled circuits."""
        entry = self._testers.get(id(program))
        if entry is not None and entry[0] is program:
            return entry[1]
        engine = self._engine_for(program.netlist)
        tester = WaferTester(
            program,
            engine=self.engine,
            executor=self._executor,
            batch_circuit=getattr(engine, "batch", None),
            compiled_circuit=getattr(engine, "compiled", None),
        )
        self._testers[id(program)] = (program, tester)
        return tester

    def stats(self) -> dict[str, int]:
        """Cache/pool observability: compiled netlists, testers, shipments."""
        return {
            "cached_netlists": len(self._engines),
            "cached_testers": len(self._testers),
            "contexts_shipped": self._executor.contexts_shipped,
        }

    # ------------------------------------------------------------- pipeline

    def fabricate(
        self,
        netlist: Netlist,
        recipe: ProcessRecipe,
        num_chips: int,
        dies_per_wafer: int = 100,
        seed=None,
    ) -> FabricatedLot:
        """Fabricate a lot of ``num_chips`` dies through the session pool.

        Wafer layouts are levelized once per (netlist, recipe, dies) and
        shipped to the pool workers once per session; the lot is
        bit-identical to :func:`~repro.manufacturing.lot.fabricate_lot`
        at any worker count.
        """
        self._check_open()
        return fabricate_lot(
            netlist,
            recipe,
            num_chips,
            dies_per_wafer=dies_per_wafer,
            seed=seed,
            executor=self._executor,
        )

    def build_program(
        self,
        netlist: Netlist,
        patterns: Sequence[Mapping[str, int]],
        collapse: bool = True,
    ) -> TestProgram:
        """Fault-simulate ``patterns`` into a :class:`TestProgram`.

        The simulation engine is compiled once per netlist per session;
        repeated builds on one netlist reuse the compiled arrays and the
        session pool.
        """
        self._check_open()
        return TestProgram.build(
            netlist,
            patterns,
            collapse=collapse,
            engine=self._engine_for(netlist),
            executor=self._executor,
        )

    def test(
        self,
        lot: FabricatedLot | Sequence[FabricatedChip],
        program: TestProgram,
    ) -> LotTestResult:
        """First-fail test a lot (or bare chip list) against ``program``.

        The tester — compiled circuit plus packed pattern blocks — is
        cached per program, so N small lots through one session ship the
        compiled context to the pool once, then only the chip shards
        travel.
        """
        self._check_open()
        chips = lot.chips if isinstance(lot, FabricatedLot) else tuple(lot)
        tester = self._tester_for(program)
        return LotTestResult(
            program=program, records=tuple(tester.test_lot(chips))
        )

    def run_experiment(self, name: str) -> str:
        """Run one named paper experiment through this session.

        Returns the rendered report; see
        :data:`repro.experiments.runner.EXPERIMENTS` for the names.
        """
        self._check_open()
        # Imported lazily: the experiments packages themselves import
        # repro.api for their session parameters.
        from repro.experiments.runner import run_experiment

        return run_experiment(name, session=self)


@contextmanager
def resolve_session(
    session: Session | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
    owner: str = "this function",
) -> Iterator[Session]:
    """Yield the caller's session, or a throwaway one built from kwargs.

    The single deprecation shim behind every migrated call site: passing
    ``session`` uses it as-is (and never closes it); passing the legacy
    ``engine=`` / ``workers=`` kwargs instead emits a
    :class:`DeprecationWarning` and wraps them in a short-lived session
    that is closed on exit; passing neither yields a serial throwaway
    session, preserving the historical serial-by-default behavior.
    """
    if session is not None:
        if engine is not None or workers is not None:
            raise TypeError(
                f"{owner} takes either session= or the deprecated "
                f"engine=/workers= kwargs, not both"
            )
        yield session
        return
    if engine is not None or workers is not None:
        warnings.warn(
            f"passing engine=/workers= to {owner} is deprecated; pass "
            f"session=repro.api.Session(engine=..., workers=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    throwaway = Session(
        engine="batch" if engine is None else engine,
        workers=1 if workers is None else workers,
    )
    try:
        yield throwaway
    finally:
        throwaway.close()
