"""Process-sharded execution runtime.

The Monte-Carlo layers above the batch engine — fault-list scanning in
:class:`~repro.faults.fault_sim.FaultSimulator`, chip-list testing in
:class:`~repro.tester.tester.WaferTester`, wafer fabrication in
:func:`~repro.manufacturing.lot.fabricate_lot` — are embarrassingly
parallel: rows of the ``(num_faults + 1, num_signals)`` batch, chips of a
lot, and wafers of a fab run are all independent.  This package supplies
the one mechanism they share: partition an ordered work list into
contiguous shards (:class:`ShardPlan`), run one worker function per shard
on a process pool (:class:`ParallelExecutor`), and merge the per-shard
results back in shard order.

Parallel runtime
----------------

**Shard/merge contract.**  :meth:`ShardPlan.balanced` cuts ``num_items``
ordered items into at most ``workers`` contiguous, near-equal shards
(sizes differ by at most one; no shard is empty).  Workers compute their
shards fully independently — the fault simulator, for instance, runs its
block loop with *per-shard* compaction, dropping each shard's detected
faults between pattern blocks exactly as the serial scan does — and
:meth:`ShardPlan.merge` concatenates the per-shard results in shard
order.  Because shards are contiguous and never reordered, the merged
output is *position-identical* to the serial run for any worker count;
dropping a fault in one shard never changes another shard's arithmetic.

**RNG-tree contract.**  Stochastic shard tasks (wafer fabrication) must
not share a stream and must not let the worker count shape the random
tree.  The caller therefore spawns one child generator per *task* (per
wafer, not per worker) from the lot seed via
:func:`~repro.utils.rng.spawn_rngs` *before* sharding, and ships the
children inside the tasks.  The RNG tree depends only on the seed and
the task count, so fabrication is bit-identical at every ``workers``
setting — the determinism suite pins this down.

**Compile-once workers.**  Contexts carry the pre-compiled NumPy arrays
(:class:`~repro.simulator.batch_sim.BatchCompiledCircuit`, packed
pattern blocks, pre-built :class:`~repro.manufacturing.wafer.Wafer`
layouts), so workers never re-levelize a netlist per task; they unpickle
the compiled arrays once and reuse them for every shard they process.
One-shot pools ship the context through the pool initializer (once per
worker per call); *persistent* pools (``persistent=True``, owned by
:class:`repro.api.Session`) cache contexts worker-side keyed by a
:func:`new_context_token` token, so an unchanged context is shipped
once per pool lifetime no matter how many calls replay it.

**Pool lifecycle.**  Executors are context managers with an explicit
:meth:`ParallelExecutor.close`; one-shot call sites wrap each call in
``with ParallelExecutor(n) as executor`` and long-lived owners (a
``Session``, the :mod:`repro.server` front end) close their executor
when they close.  Long-lived persistent pools additionally support
token **eviction** (:meth:`ParallelExecutor.evict` broadcasts a context
removal to every worker, bounding worker-resident memory) and
**crash recovery**: a worker killed between calls is respawned by
``multiprocessing`` with an empty registry, reports the missing context
via :class:`WorkerCrashError`, and is transparently healed by a context
re-broadcast and retry — callers see the error only when recovery fails
repeatedly, and can tell it apart from user-code failures by type (it
carries the shard index and token).

**Serial fallback.**  ``workers=1`` (the default everywhere) never
touches ``multiprocessing``: the work runs in-process on the exact
serial code path, so default behavior, exception timing, and
determinism are unchanged.  ``workers="auto"`` resolves to the visible
CPU count.
"""

from repro.runtime.executor import (
    ParallelExecutor,
    PoisonShardError,
    WorkerCrashError,
    WorkerTimeoutError,
    new_context_token,
    resolve_workers,
    shard_fingerprint,
)
from repro.runtime.sharding import ShardPlan

__all__ = [
    "ParallelExecutor",
    "PoisonShardError",
    "ShardPlan",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "new_context_token",
    "resolve_workers",
    "shard_fingerprint",
]
