"""Zero-copy wire framing for pool payloads: pickle-5 + shared memory.

Everything that crosses a :class:`~repro.runtime.ParallelExecutor` pool
boundary — shard tasks, shard results, context broadcasts — is framed as
a :class:`WirePayload`: a pickle protocol-5 header with every ndarray
buffer carried *out of band*.  Small buffers ride inline as ``bytes``
(one copy into the pipe, none on the far side: the consumer array maps
the frame bytes directly); buffers at or above :data:`SHM_MIN_BYTES` are
placed in POSIX shared memory (``multiprocessing.shared_memory``), so
the pipe carries only a ``(name, nbytes)`` reference and the receiving
process maps the same physical pages — a context broadcast to N workers
copies its large arrays exactly once, not N times.

Ownership discipline (the part that keeps ``/dev/shm`` clean):

* The **sender** owns the segments it creates: it unlinks and
  deregisters them via :func:`release_segments` as soon as the dispatch
  that shipped them completes (POSIX keeps the memory alive for every
  process that already mapped it, so receivers are unaffected).
* The **receiver** opens segments by name, immediately deregisters them
  from its ``resource_tracker`` (Python 3.11 registers on *attach* as
  well as create; without the deregister a receiver exit would unlink a
  segment it does not own), and then **abandons** the handles
  (:func:`abandon_segments`): the wrapper's fd is closed and its mmap
  reference dropped, leaving the mapping's lifetime to the decoded
  arrays themselves — the arrays' exported buffers keep the ``mmap``
  object alive, and the pages unmap automatically when the last array
  dies.  No handle bookkeeping, no ``SharedMemory.__del__`` noise.
* A worker returning a large result closes its own handle right after
  filling the segment (the name persists); the coordinator adopts the
  segment on decode — unlinking it immediately — so a coordinator that
  outlives the pool never accumulates names.  If a worker is SIGKILLed
  between creating a result segment and the coordinator adopting it,
  the shared ``resource_tracker`` unlinks the leaked name at interpreter
  exit — the crash-safety net.

Arrays decoded from *inline* buffers are read-only (they share the
immutable frame bytes); arrays decoded from shared-memory segments are
writable views of shared pages.  Worker functions must treat both as
read-only, which every worker in this codebase does.
"""

from __future__ import annotations

import itertools
import os
import pickle
from dataclasses import dataclass
from typing import Any

from repro import chaos

__all__ = [
    "SHM_MIN_BYTES",
    "ShmAttachError",
    "WirePayload",
    "pack_payload",
    "unpack_payload",
    "payload_nbytes",
    "release_segments",
    "adopt_segments",
    "abandon_segments",
    "reap_worker_segments",
]

# Buffers at or above this many bytes travel via shared memory; smaller
# ones ride inline in the pipe frame.  Overridable for tests and tuning.
SHM_MIN_BYTES = int(os.environ.get("REPRO_WIRE_SHM_MIN_BYTES", 1 << 20))

# Probed once: whether this platform can create shared-memory segments.
_SHM_USABLE: bool | None = None

# Serial for this process's segment names (see _create_segment).
_SEGMENT_COUNTER = itertools.count()


class ShmAttachError(RuntimeError):
    """A shared-memory segment named in a payload could not be attached.

    Raised by :func:`unpack_payload` when a referenced segment is gone
    (its creator crashed between pack and dispatch, or the name was
    reaped) or when the chaos harness injects an attach failure.  The
    executor treats it exactly like a worker crash: the dispatch is
    retried with a freshly packed payload.
    """


def _shm_usable() -> bool:
    global _SHM_USABLE
    if _SHM_USABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _SHM_USABLE = True
        except Exception:
            _SHM_USABLE = False
    return _SHM_USABLE


def _create_segment(size: int):
    """Create a fresh segment under this package's ``repro_*`` namespace.

    Explicit names (pid + per-process serial + random suffix, retried on
    the astronomically unlikely collision) instead of the stdlib's
    ``psm_*`` defaults, so ``/dev/shm`` hygiene is auditable: anything
    matching ``repro_*`` after a run is ours and is a leak — the
    invariant the test suite's session fixture enforces.
    """
    from multiprocessing import shared_memory

    while True:
        name = (
            f"repro_{os.getpid()}_{next(_SEGMENT_COUNTER)}_"
            f"{os.urandom(4).hex()}"
        )
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            continue


def _untrack(shm) -> None:
    """Deregister a segment this process does not own (attach-side fix).

    Python 3.11's ``SharedMemory.__init__`` registers with the
    ``resource_tracker`` on attach as well as create; left in place, the
    tracker would unlink the name when *this* process exits even though
    the creator still owns it, and warn about "leaked" segments.

    A forked pool worker shares its parent's tracker process (the repo's
    executors probe :func:`_shm_usable` before forking, so the tracker
    always predates the pool).  There the attach-side registration was a
    set no-op — unregistering would strip the *creator's* entry and
    break the crash-safety net — so fork children skip it.
    """
    try:
        import multiprocessing
        from multiprocessing import resource_tracker

        if (
            multiprocessing.parent_process() is not None
            and multiprocessing.get_start_method(allow_none=True) != "spawn"
        ):
            return
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class _SegmentRef:
    """One out-of-band buffer parked in a named shared-memory segment."""

    name: str
    nbytes: int


@dataclass(frozen=True)
class WirePayload:
    """One framed object: pickle-5 header + ordered out-of-band buffers.

    ``buffers`` holds, in pickle order, either the inline ``bytes`` of a
    small buffer or a :class:`_SegmentRef` naming a shared-memory
    segment.  ``nbytes`` is the total payload size (header plus every
    buffer) — the number the executor's ``ipc_bytes_out/in`` counters
    accumulate, independent of which transport each buffer used.
    """

    header: bytes
    buffers: tuple
    nbytes: int


def pack_payload(obj: Any, shm_min_bytes: int | None = None):
    """Frame ``obj`` for the pool pipe; returns ``(payload, owned)``.

    ``owned`` lists the shared-memory segments this call created; the
    caller must hand them to :func:`release_segments` once the dispatch
    that shipped the payload completes (success or failure — receivers
    that already mapped the pages are unaffected).
    """
    threshold = SHM_MIN_BYTES if shm_min_bytes is None else shm_min_bytes
    picklebuffers: list[pickle.PickleBuffer] = []
    header = pickle.dumps(
        obj, protocol=5, buffer_callback=picklebuffers.append
    )
    buffers: list = []
    owned: list = []
    total = len(header)
    use_shm = threshold is not None and _shm_usable()
    for pb in picklebuffers:
        raw = pb.raw()
        size = raw.nbytes
        total += size
        if use_shm and size >= threshold:
            segment = _create_segment(size)
            segment.buf[:size] = raw
            owned.append(segment)
            buffers.append(_SegmentRef(segment.name, size))
        else:
            buffers.append(raw.tobytes())
        raw.release()
        pb.release()
    return WirePayload(header, tuple(buffers), total), owned


def unpack_payload(payload: WirePayload):
    """Decode a :class:`WirePayload`; returns ``(obj, opened)``.

    ``opened`` lists the shared-memory handles this call attached; the
    decoded arrays reference their pages directly.  Receivers hand them
    straight to :func:`abandon_segments`; a coordinator decoding
    worker-created result segments calls :func:`adopt_segments` (which
    also unlinks) instead.
    """
    opened: list = []
    bufs: list = []
    for entry in payload.buffers:
        if isinstance(entry, _SegmentRef):
            from multiprocessing import shared_memory

            try:
                chaos.fire("wire.shm_attach")
                segment = shared_memory.SharedMemory(name=entry.name)
            except (chaos.InjectedFault, FileNotFoundError) as exc:
                raise ShmAttachError(
                    f"cannot attach shared-memory segment {entry.name!r}: "
                    f"{exc}"
                ) from exc
            _untrack(segment)
            opened.append(segment)
            bufs.append(segment.buf[: entry.nbytes])
        else:
            bufs.append(entry)
    return pickle.loads(payload.header, buffers=bufs), opened


def payload_nbytes(obj: Any) -> int:
    """The wire size ``obj`` would frame to, without copying buffers."""
    picklebuffers: list[pickle.PickleBuffer] = []
    header = pickle.dumps(
        obj, protocol=5, buffer_callback=picklebuffers.append
    )
    total = len(header)
    for pb in picklebuffers:
        raw = pb.raw()
        total += raw.nbytes
        raw.release()
        pb.release()
    return total


def release_segments(segments) -> None:
    """Sender side: close, unlink, and deregister owned segments.

    ``SharedMemory.unlink`` deregisters from the ``resource_tracker``
    itself, so the explicit :func:`_untrack` runs only when the unlink
    never got that far (name already gone) — a second unregister on the
    fork-shared tracker would strip someone else's entry.
    """
    for segment in segments:
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except Exception:
            _untrack(segment)


def adopt_segments(segments) -> None:
    """Unlink + abandon segments whose creator is done with them.

    The coordinator calls this right after :func:`unpack_payload` on a
    result payload: the worker that created the segments has already
    closed its handle, so unlinking here removes the *name* immediately
    while the mapping — abandoned to the decoded arrays — keeps the
    pages alive exactly as long as they are referenced.

    :func:`unpack_payload`'s attach-side :func:`_untrack` already cleared
    the tracker entry, but ``SharedMemory.unlink`` unconditionally sends
    its own unregister — so re-register first to keep the tracker's
    bookkeeping balanced (an unregister without a matching entry makes
    the shared tracker process log a ``KeyError``).
    """
    for segment in segments:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(segment._name, "shared_memory")
        except Exception:
            pass
        try:
            segment.unlink()
        except Exception:
            _untrack(segment)
    abandon_segments(segments)


def reap_worker_segments(pids) -> int:
    """Unlink orphaned ``repro_*`` segments created by dead pool workers.

    A dispatch that fails after some workers already returned can strand
    their *result* segments: the names ride inside result payloads the
    failed ``pool.map`` discarded, so the coordinator never learns them
    to adopt.  But segment names embed the creator's pid, so once a
    pool's workers are dead (torn down before any retry), every segment
    still named under their pids is such an orphan — reap it.  Only
    callable on platforms with a listable shm directory (``/dev/shm``);
    elsewhere the resource tracker still cleans up at process exit.

    Returns the number of segments reaped.
    """
    pids = list(pids)
    if not pids:
        return 0
    prefixes = tuple(f"repro_{pid}_" for pid in pids)
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return 0
    reaped = 0
    for name in names:
        if not name.startswith(prefixes):
            continue
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=name)
        except Exception:
            continue  # raced with the tracker, or vanished — already gone
        try:
            segment.close()
        except Exception:
            pass
        try:
            # unlink() also unregisters the name from the shared
            # resource_tracker, retiring the dead creator's entry (the
            # attach above re-registered it, so the books stay balanced).
            segment.unlink()
            reaped += 1
        except Exception:
            _untrack(segment)
    return reaped


def abandon_segments(segments) -> None:
    """Hand each mapping's lifetime over to the decoded arrays.

    Releases the wrapper's own memoryview, drops its ``mmap`` reference,
    and closes its fd.  The decoded arrays' exported buffers keep the
    ``mmap`` object alive, so the pages stay mapped while any array
    lives and unmap automatically when the last one dies — the wrapper
    object itself becomes inert (no ``__del__`` close attempt, no
    ``BufferError`` while views are still out).
    """
    for segment in segments:
        try:
            if segment._buf is not None:
                segment._buf.release()
        except Exception:
            pass
        segment._buf = None
        segment._mmap = None
        try:
            if segment._fd >= 0:
                os.close(segment._fd)
                segment._fd = -1
        except Exception:
            pass
