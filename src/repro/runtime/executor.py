"""Process-pool execution of shard tasks with a per-process context.

:class:`ParallelExecutor` runs ``fn(context, task)`` for an ordered list
of tasks.  At ``workers=1`` it is a plain in-process loop (no
``multiprocessing`` import cost, no pickling — the serial fallback that
keeps default behavior unchanged).  Above that it creates a pool whose
initializer installs ``(fn, context)`` once per worker process: the
context — typically compiled NumPy arrays plus packed pattern blocks —
is pickled exactly once per worker rather than once per task, which is
what makes compile-once/fan-out profitable for netlist workloads.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, TypeVar

__all__ = ["ParallelExecutor", "resolve_workers"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

# (fn, context) installed by the pool initializer — one per worker
# process, fixed for the pool's lifetime.
_WORKER_STATE: tuple[Callable, Any] | None = None


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers`` argument to a concrete process count.

    ``"auto"`` means one worker per visible CPU; ``None`` and ``1`` mean
    serial; any other value must be an integer >= 1.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(
                f"workers must be an integer >= 1 or 'auto', got {workers!r}"
            )
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(
            f"workers must be an integer >= 1 or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _init_worker(fn: Callable, context: Any) -> None:
    """Pool initializer: cache the worker function and shard context."""
    global _WORKER_STATE
    _WORKER_STATE = (fn, context)


def _run_task(task):
    fn, context = _WORKER_STATE  # type: ignore[misc]
    return fn(context, task)


class ParallelExecutor:
    """Maps a worker function over shard tasks, order-preserving.

    Parameters
    ----------
    workers:
        ``1`` (serial, the default), an integer process count, or
        ``"auto"`` for one process per visible CPU.
    """

    def __init__(self, workers: int | str | None = 1):
        self.num_workers = resolve_workers(workers)

    @property
    def is_serial(self) -> bool:
        return self.num_workers == 1

    def map_shards(
        self,
        fn: Callable[[Any, TaskT], ResultT],
        context: Any,
        tasks: Iterable[TaskT],
    ) -> list[ResultT]:
        """Run ``fn(context, task)`` for every task; results in task order.

        With one effective worker (or one task) this is an in-process
        loop.  Otherwise ``fn`` and ``context`` must be picklable and
        ``fn`` importable at module level; the pool never outlives the
        call.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        processes = min(self.num_workers, len(tasks))
        if processes == 1:
            return [fn(context, task) for task in tasks]
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes, initializer=_init_worker, initargs=(fn, context)
        ) as pool:
            return pool.map(_run_task, tasks)
