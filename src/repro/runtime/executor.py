"""Process-pool execution of shard tasks with a per-process context.

:class:`ParallelExecutor` runs ``fn(context, task)`` for an ordered list
of tasks.  At ``workers=1`` it is a plain in-process loop (no
``multiprocessing`` import cost, no pickling — the serial fallback that
keeps default behavior unchanged).  Above that there are two pool
lifecycles:

* **One-shot** (``persistent=False``, the default): each
  :meth:`~ParallelExecutor.map_shards` call creates a pool whose
  initializer installs ``(fn, context)`` once per worker process and
  tears the pool down before returning.  The context — typically
  compiled NumPy arrays plus packed pattern blocks — is pickled exactly
  once per worker rather than once per task, which is what makes
  compile-once/fan-out profitable for netlist workloads.
* **Persistent** (``persistent=True``): the pool is created on first
  use and *reused* across calls until :meth:`~ParallelExecutor.close`.
  Contexts are identified by **tokens** (see :func:`new_context_token`):
  a context is broadcast to the workers only the first time its token is
  seen, so a session that tests N small lots against one compiled
  circuit pays the fork and the context pickling once, not N times.
  This is the execution substrate of :class:`repro.api.Session`.

Executors are context managers; one-shot call sites should use
``with ParallelExecutor(n) as executor: ...`` so teardown is explicit
rather than left to garbage collection.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from typing import Any, Callable, Hashable, Iterable, TypeVar

__all__ = ["ParallelExecutor", "new_context_token", "resolve_workers"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

# (fn, context) installed by the one-shot pool initializer — one per
# worker process, fixed for the pool's lifetime.
_WORKER_STATE: tuple[Callable, Any] | None = None

# Persistent pools: token -> (fn, context) registry plus the install
# barrier, both set up by the persistent initializer.
_WORKER_CONTEXTS: dict[Hashable, tuple[Callable, Any]] | None = None
_WORKER_BARRIER = None

# Tokens are unique per process; the counter is shared by every executor
# so a token can never collide across callers that feed one pool.
_TOKEN_COUNTER = itertools.count()

# Reserved token for contexts shipped without a caller-supplied token:
# always re-installed, so the worker-side registry stays bounded.
_ONESHOT_TOKEN = ("__oneshot__",)


def new_context_token() -> tuple[str, int]:
    """A fresh, process-unique token identifying one shard context.

    Callers that reuse a compiled context across
    :meth:`ParallelExecutor.map_shards` calls mint one token per context
    and pass it each time; a persistent pool then ships the context to
    its workers only on the first call.
    """
    return ("ctx", next(_TOKEN_COUNTER))


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers`` argument to a concrete process count.

    ``"auto"`` means one worker per visible CPU; ``None`` and ``1`` mean
    serial; any other value must be an integer >= 1.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(
                f"workers must be an integer >= 1 or 'auto', got {workers!r}"
            )
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(
            f"workers must be an integer >= 1 or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _init_worker(fn: Callable, context: Any) -> None:
    """One-shot pool initializer: cache the worker function and context."""
    global _WORKER_STATE
    _WORKER_STATE = (fn, context)


def _run_task(task):
    fn, context = _WORKER_STATE  # type: ignore[misc]
    return fn(context, task)


def _init_persistent_worker(barrier) -> None:
    """Persistent pool initializer: empty context registry + barrier."""
    global _WORKER_CONTEXTS, _WORKER_BARRIER
    _WORKER_CONTEXTS = {}
    _WORKER_BARRIER = barrier


def _install_context(payload) -> None:
    """Install one context under its token, synchronized across workers.

    Every worker blocks on the barrier after installing; with one
    install task per worker and ``chunksize=1`` no worker can take a
    second install task before all have one, so each process receives
    the context exactly once per token.
    """
    token, fn, context = payload
    _WORKER_CONTEXTS[token] = (fn, context)  # type: ignore[index]
    _WORKER_BARRIER.wait()  # type: ignore[union-attr]


def _run_token_task(payload):
    token, task = payload
    state = _WORKER_CONTEXTS.get(token)  # type: ignore[union-attr]
    if state is None:
        # Only reachable when multiprocessing silently respawned a
        # crashed worker: the replacement starts with an empty registry
        # while the parent still believes the token is installed.
        raise RuntimeError(
            "shard context missing in worker — a pool worker was "
            "restarted after a crash; close and rebuild the "
            "executor/session"
        )
    fn, context = state
    return fn(context, task)


class ParallelExecutor:
    """Maps a worker function over shard tasks, order-preserving.

    Parameters
    ----------
    workers:
        ``1`` (serial, the default), an integer process count, or
        ``"auto"`` for one process per visible CPU.
    persistent:
        Keep the process pool alive across :meth:`map_shards` calls
        (created lazily on first parallel call, torn down by
        :meth:`close`).  Persistent pools cache shard contexts by token,
        so an unchanged context is shipped to the workers only once.
        Two session-scoped trade-offs follow: token-keyed contexts stay
        resident in every worker until :meth:`close` (memory grows with
        the number of *distinct* contexts, by design — close the
        session to release them), and an abnormally killed worker
        process invalidates the pool (its respawned replacement has no
        contexts; calls then raise a "context missing" ``RuntimeError``
        rather than recompute silently).
    """

    def __init__(self, workers: int | str | None = 1, persistent: bool = False):
        self.num_workers = resolve_workers(workers)
        self.persistent = bool(persistent)
        self._pool = None
        self._installed: set[Hashable] = set()
        self._contexts_shipped = 0
        self._closed = False

    @property
    def is_serial(self) -> bool:
        return self.num_workers == 1

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def contexts_shipped(self) -> int:
        """How many context broadcasts this executor's persistent pool made.

        The cache-hit observable: calling :meth:`map_shards` twice with
        the same token must raise this by one, not two.
        """
        return self._contexts_shipped

    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context()
            barrier = ctx.Barrier(self.num_workers)
            self._pool = ctx.Pool(
                self.num_workers,
                initializer=_init_persistent_worker,
                initargs=(barrier,),
            )
        return self._pool

    def map_shards(
        self,
        fn: Callable[[Any, TaskT], ResultT],
        context: Any,
        tasks: Iterable[TaskT],
        token: Hashable | None = None,
    ) -> list[ResultT]:
        """Run ``fn(context, task)`` for every task; results in task order.

        With one effective worker (or one task) this is an in-process
        loop.  Otherwise ``fn`` and ``context`` must be picklable and
        ``fn`` importable at module level.  ``token`` (persistent pools
        only) identifies the context: a token the pool has already seen
        skips the context broadcast entirely, so only the tasks travel.
        Tokenless calls re-ship the context each time.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        if min(self.num_workers, len(tasks)) == 1:
            return [fn(context, task) for task in tasks]
        if not self.persistent:
            processes = min(self.num_workers, len(tasks))
            ctx = multiprocessing.get_context()
            with ctx.Pool(
                processes, initializer=_init_worker, initargs=(fn, context)
            ) as pool:
                return pool.map(_run_task, tasks)
        pool = self._ensure_pool()
        if token is None:
            token = _ONESHOT_TOKEN
            self._installed.discard(token)
        if token not in self._installed:
            pool.map(
                _install_context,
                [(token, fn, context)] * self.num_workers,
                chunksize=1,
            )
            self._installed.add(token)
            self._contexts_shipped += 1
        return pool.map(_run_token_task, [(token, task) for task in tasks])

    def close(self) -> None:
        """Tear down the pool and mark the executor unusable (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._installed.clear()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        # Safety net only — call sites own teardown via close()/with.
        try:
            if not self._closed and self._pool is not None:
                self.close()
        except Exception:
            pass
