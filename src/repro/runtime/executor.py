"""Process-pool execution of shard tasks with a per-process context.

:class:`ParallelExecutor` runs ``fn(context, task)`` for an ordered list
of tasks.  At ``workers=1`` it is a plain in-process loop (no
``multiprocessing`` import cost, no pickling — the serial fallback that
keeps default behavior unchanged).  Above that there are two pool
lifecycles:

* **One-shot** (``persistent=False``, the default): each
  :meth:`~ParallelExecutor.map_shards` call creates a pool whose
  initializer installs ``(fn, context)`` once per worker process and
  tears the pool down before returning.  The context — typically
  compiled NumPy arrays plus packed pattern blocks — is pickled exactly
  once per worker rather than once per task, which is what makes
  compile-once/fan-out profitable for netlist workloads.
* **Persistent** (``persistent=True``): the pool is created on first
  use and *reused* across calls until :meth:`~ParallelExecutor.close`.
  Contexts are identified by **tokens** (see :func:`new_context_token`):
  a context is broadcast to the workers only the first time its token is
  seen, so a session that tests N small lots against one compiled
  circuit pays the fork and the context pickling once, not N times.
  This is the execution substrate of :class:`repro.api.Session` and the
  lot-testing server (:mod:`repro.server`).

Server-grade persistent pools add two behaviors a long-lived process
needs:

* **Eviction** — :meth:`~ParallelExecutor.evict` broadcasts a token
  removal to every worker, releasing the worker-resident context memory
  without tearing the pool down.  A :class:`repro.api.Session` with
  ``max_contexts`` / ``max_bytes`` drives this from its LRU.
* **Crash recovery** — a killed worker process poisons a
  ``multiprocessing`` pool in ways its silent respawn cannot fix (a
  worker killed while holding the shared task-queue lock deadlocks the
  respawned pool, and a cleanly respawned worker starts with an empty
  context registry).  The executor therefore recovers at the
  coordinator: before dispatching on a persistent pool it compares the
  live worker pids against the pids the pool was built with, and on any
  death or respawn it *rebuilds* the pool and re-ships contexts on
  demand (tokens are simply marked uninstalled).  As a second layer, a
  respawn that slips past the pid check signals
  :class:`WorkerCrashError` from the worker the first time it is handed
  a task; :meth:`~ParallelExecutor.map_shards` catches it,
  re-broadcasts the context, and retries.  Crashes *while* a call is in
  flight are covered too: a plain ``pool.map`` would block forever on a
  task that died with its worker, so every persistent-pool dispatch is
  an async map polled against worker liveness — a death mid-call raises
  :class:`WorkerCrashError` at the coordinator, which rebuilds and
  retries the whole call.  Only when recovery fails repeatedly does
  :class:`WorkerCrashError` — which carries the shard index and token,
  unlike a user-code exception — propagate to the caller.  Worker
  functions must therefore be pure (they may be re-run on retry); every
  worker in this codebase is.

Executors are context managers; one-shot call sites should use
``with ParallelExecutor(n) as executor: ...`` so teardown is explicit
rather than left to garbage collection.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import pickle
import time
from typing import Any, Callable, Hashable, Iterable, TypeVar

from repro import chaos
from repro.runtime import wire

__all__ = [
    "ParallelExecutor",
    "PoisonShardError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "new_context_token",
    "resolve_workers",
    "shard_fingerprint",
]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

# (fn, context) installed by the one-shot pool initializer — one per
# worker process, fixed for the pool's lifetime.
_WORKER_STATE: tuple[Callable, Any] | None = None

# Persistent pools: token -> (fn, context) registry plus the install
# barrier, both set up by the persistent initializer.
_WORKER_CONTEXTS: dict[Hashable, tuple[Callable, Any]] | None = None
_WORKER_BARRIER = None

# Worker-side wire accounting: decoded / returned payload bytes.
# Shared-memory handles need no registry — decoded segments are
# abandoned to their arrays (see repro.runtime.wire), so dropping a
# context or task payload releases its pages automatically.
_WORKER_IPC = {"bytes_in": 0, "bytes_out": 0}

# Tokens are unique per process; the counter is shared by every executor
# so a token can never collide across callers that feed one pool.
_TOKEN_COUNTER = itertools.count()

# Reserved token for contexts shipped without a caller-supplied token:
# always re-installed, so the worker-side registry stays bounded.
_ONESHOT_TOKEN = ("__oneshot__",)

# How many times one map_shards call re-installs its context and retries
# after a worker crash before giving up and raising WorkerCrashError.
_MAX_RECOVERIES_PER_CALL = 2

# How often an in-flight persistent-pool dispatch checks worker liveness.
_POOL_POLL_SECONDS = 0.5

# Environment default for the per-dispatch watchdog deadline (seconds);
# unset or <= 0 disables the watchdog (the historical behavior).
_DISPATCH_TIMEOUT_ENV = "REPRO_DISPATCH_TIMEOUT"


class WorkerCrashError(RuntimeError):
    """A pool worker died and its respawned replacement lacks a context.

    Raised *inside* a worker when it is handed a token it has no context
    for — which only happens when ``multiprocessing`` respawned a
    crashed worker process (fresh processes start with an empty
    registry).  :meth:`ParallelExecutor.map_shards` intercepts it,
    re-ships the context, and retries transparently; callers only see it
    when recovery fails repeatedly.  Unlike exceptions raised by user
    worker functions, it carries where the failure happened:

    ``token``
        The context token the worker was missing.
    ``shard_index``
        0-based index of the shard task that hit the respawned worker.
    """

    def __init__(self, message: str, token=None, shard_index=None):
        super().__init__(message)
        self.token = token
        self.shard_index = shard_index

    def __reduce__(self):
        # Keep token/shard_index across the worker->parent pickle hop.
        return (type(self), (self.args[0], self.token, self.shard_index))


class WorkerTimeoutError(WorkerCrashError):
    """A persistent-pool dispatch exceeded its watchdog deadline.

    The liveness poll only catches *death*; a worker that is SIGSTOPped,
    livelocked, or stuck in a syscall is alive-but-hung and would block
    a dispatch forever.  With ``dispatch_timeout`` set (constructor
    argument or ``REPRO_DISPATCH_TIMEOUT``), a dispatch that outlives
    the deadline raises this instead; the executor force-rebuilds the
    pool (a hung worker passes the pid liveness check, so the normal
    heal would keep it) and retries.  Subclasses
    :class:`WorkerCrashError` so existing recovery paths treat a hang
    exactly like a crash.
    """

    def __init__(self, message: str, token=None, shard_index=None, timeout=None):
        super().__init__(message, token=token, shard_index=shard_index)
        self.timeout = timeout

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.token, self.shard_index, self.timeout),
        )


class PoisonShardError(RuntimeError):
    """One specific shard payload reproducibly kills its worker.

    When a :meth:`ParallelExecutor.map_shards` call exhausts its crash-
    recovery budget, the executor re-dispatches the shards one at a time
    to find the killer.  A shard that crashes its worker even in
    isolation is *poison* — retrying it would burn the whole recovery
    budget on every future call — so its payload fingerprint
    (:func:`shard_fingerprint`) is quarantined: this error is raised
    now, and again immediately (no dispatch, no crash) whenever a
    quarantined fingerprint reappears in a task list.

    ``fingerprint``
        Hex digest of the poison shard's payload — stable across
        processes, so logs from different runs identify the same shard.
    ``token`` / ``shard_index``
        Where in the failing call the shard sat.
    """

    def __init__(self, message: str, token=None, shard_index=None, fingerprint=None):
        super().__init__(message)
        self.token = token
        self.shard_index = shard_index
        self.fingerprint = fingerprint

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.token, self.shard_index, self.fingerprint),
        )


def shard_fingerprint(task: Any) -> str:
    """A short, process-stable digest of one shard task's payload.

    SHA-256 over the task's pickle (protocol 5, buffers in-band so the
    array contents are covered), truncated for log friendliness.  This
    is the identity under which poison shards are quarantined.
    """
    return hashlib.sha256(pickle.dumps(task, protocol=5)).hexdigest()[:16]


def new_context_token() -> tuple[str, int]:
    """A fresh, process-unique token identifying one shard context.

    Callers that reuse a compiled context across
    :meth:`ParallelExecutor.map_shards` calls mint one token per context
    and pass it each time; a persistent pool then ships the context to
    its workers only on the first call, and can later drop it again via
    :meth:`ParallelExecutor.evict`.
    """
    return ("ctx", next(_TOKEN_COUNTER))


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers`` argument to a concrete process count.

    ``"auto"`` means one worker per visible CPU; ``None`` and ``1`` mean
    serial; any other value must be an integer >= 1.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(
                f"workers must be an integer >= 1 or 'auto', got {workers!r}"
            )
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(
            f"workers must be an integer >= 1 or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _init_worker(fn: Callable, context: Any) -> None:
    """One-shot pool initializer: cache the worker function and context."""
    global _WORKER_STATE
    _WORKER_STATE = (fn, context)


def _run_wire_task(fn: Callable, context: Any, task: wire.WirePayload):
    """Decode a wire-framed task, run it, wire-frame the result.

    Worker-created result segments are closed locally right after the
    copy (the name persists for the coordinator to adopt); task segments
    opened here are abandoned to the decoded arrays, so their pages
    unmap when the task object dies.
    """
    obj, opened = wire.unpack_payload(task)
    wire.abandon_segments(opened)
    _WORKER_IPC["bytes_in"] += task.nbytes
    result = fn(context, obj)
    del obj
    envelope, owned = wire.pack_payload(result)
    del result
    _WORKER_IPC["bytes_out"] += envelope.nbytes
    for segment in owned:
        try:
            segment.close()
        except Exception:
            pass
    return envelope


def _run_task(task):
    fn, context = _WORKER_STATE  # type: ignore[misc]
    if isinstance(task, wire.WirePayload):
        return _run_wire_task(fn, context, task)
    return fn(context, task)


def _init_persistent_worker(barrier) -> None:
    """Persistent pool initializer: empty context registry + barrier.

    Runs both at pool creation and whenever ``multiprocessing`` respawns
    a crashed worker — which is why a respawned worker starts with an
    empty registry and must be healed by a context re-broadcast.
    """
    global _WORKER_CONTEXTS, _WORKER_BARRIER
    _WORKER_CONTEXTS = {}
    _WORKER_BARRIER = barrier


def _broadcast_barrier_wait() -> None:
    _WORKER_BARRIER.wait()  # type: ignore[union-attr]


def _install_context(payload) -> None:
    """Install one context under its token, synchronized across workers.

    Every worker blocks on the barrier after installing; with one
    install task per worker and ``chunksize=1`` no worker can take a
    second install task before all have one, so each process receives
    the context exactly once per token.
    """
    token, fn, context = payload
    try:
        if isinstance(context, wire.WirePayload):
            _WORKER_IPC["bytes_in"] += context.nbytes
            context, opened = wire.unpack_payload(context)
            wire.abandon_segments(opened)
        _WORKER_CONTEXTS[token] = (fn, context)  # type: ignore[index]
    except BaseException as exc:
        # The other workers are already heading for the barrier; bailing
        # out before waiting would strand them there until the broadcast
        # times out the hard way.  Wait first, then report the failure
        # as a worker crash so the coordinator re-ships and retries.
        _broadcast_barrier_wait()
        if isinstance(exc, wire.ShmAttachError):
            raise WorkerCrashError(str(exc), token=token) from exc
        raise
    _broadcast_barrier_wait()


def _evict_context(token) -> None:
    """Drop one context from this worker's registry (barrier-synced).

    Same one-task-per-worker broadcast discipline as
    :func:`_install_context`; unknown tokens are ignored so eviction is
    idempotent even on a worker that was respawned after a crash.
    """
    _WORKER_CONTEXTS.pop(token, None)  # type: ignore[union-attr]
    _broadcast_barrier_wait()


def _collect_worker_stats(_payload) -> dict:
    """Report this worker's registry occupancy (barrier-synced).

    The barrier guarantees one answer per live worker process, so the
    caller sees the true worker-side residency — the observable that the
    eviction tests assert on.
    """
    stats = {
        "pid": os.getpid(),
        "resident_contexts": len(_WORKER_CONTEXTS),  # type: ignore[arg-type]
        "tokens": sorted(repr(t) for t in _WORKER_CONTEXTS),  # type: ignore[union-attr]
        "ipc_bytes_in": _WORKER_IPC["bytes_in"],
        "ipc_bytes_out": _WORKER_IPC["bytes_out"],
    }
    _broadcast_barrier_wait()
    return stats


def _force_release(lock) -> None:
    """Free a pool queue lock that a SIGKILLed worker died holding.

    If the lock is healthy, the acquire succeeds and the release simply
    restores it.  If the holder is dead, the acquire times out and the
    bare release (legal on multiprocessing's semaphore-backed ``Lock``)
    un-poisons it; over-releasing a free lock raises and is swallowed.
    """
    try:
        if lock.acquire(timeout=0.1):
            lock.release()
        else:
            lock.release()
    except Exception:
        pass


def _destroy_pool(pool) -> int:
    """Tear down a (possibly crash-poisoned) persistent pool, guaranteed.

    ``Pool.terminate`` deadlocks if a worker was killed while holding a
    shared queue lock (its ``_help_stuff_finish`` blocks acquiring the
    task-queue read lock forever).  So: kill the workers first, force-
    release the queue locks a dead worker may have held, then run the
    normal teardown, which can now drain and join cleanly.

    Once every worker is dead, any shared-memory segment still named
    under a worker pid is an orphan (results of a failed dispatch the
    coordinator never adopted) — reap them; returns the reap count.
    """
    pids = [proc.pid for proc in pool._pool]
    for proc in pool._pool:
        if proc.is_alive():
            proc.terminate()
    for proc in pool._pool:
        proc.join(5)
        if proc.is_alive():
            proc.kill()
            proc.join()
    _force_release(pool._inqueue._rlock)
    _force_release(pool._outqueue._wlock)
    pool.terminate()
    pool.join()
    return wire.reap_worker_segments(pids)


def _run_token_task(payload):
    token, index, task = payload
    # The chaos hook for worker-side faults (kill/hang/fail at a given
    # shard index).  Only the persistent token path is instrumented: a
    # kill on the serial path would take down the coordinator itself.
    chaos.fire("executor.shard", index=index)
    state = _WORKER_CONTEXTS.get(token)  # type: ignore[union-attr]
    if state is None:
        # Only reachable when multiprocessing silently respawned a
        # crashed worker: the replacement starts with an empty registry
        # while the parent still believes the token is installed.  The
        # parent catches this, re-broadcasts the context, and retries.
        raise WorkerCrashError(
            "shard context missing in worker — a pool worker was "
            "restarted after a crash",
            token=token,
            shard_index=index,
        )
    fn, context = state
    try:
        if isinstance(task, wire.WirePayload):
            return _run_wire_task(fn, context, task)
        return fn(context, task)
    except wire.ShmAttachError as exc:
        # A task segment vanished before this worker mapped it (creator
        # crash, or injected): the payload is unusable here but a repack
        # will succeed, so surface it as a crash for the retry loop.
        raise WorkerCrashError(str(exc), token=token, shard_index=index) from exc


class ParallelExecutor:
    """Maps a worker function over shard tasks, order-preserving.

    Parameters
    ----------
    workers:
        ``1`` (serial, the default), an integer process count, or
        ``"auto"`` for one process per visible CPU.
    persistent:
        Keep the process pool alive across :meth:`map_shards` calls
        (created lazily on first parallel call, torn down by
        :meth:`close`).  Persistent pools cache shard contexts by token,
        so an unchanged context is shipped to the workers only once.
        Token-keyed contexts stay resident in every worker until they
        are :meth:`evict`\\ ed or the executor is closed; a long-lived
        owner (a server session) bounds residency with an LRU that calls
        :meth:`evict`.  A worker killed between calls is healed
        transparently: the executor notices the dead/respawned pid
        before dispatching, rebuilds the pool, and re-ships contexts on
        demand (with a :class:`WorkerCrashError` re-install/retry as the
        fallback layer).

    Determinism: results are returned in task order and every shard is
    computed independently, so for the pure worker functions this
    codebase ships, output is bit-identical at every worker count and
    across one-shot/persistent/serial lifecycles.
    """

    def __init__(
        self,
        workers: int | str | None = 1,
        persistent: bool = False,
        wire_format: bool = True,
        dispatch_timeout: float | None = None,
    ):
        self.num_workers = resolve_workers(workers)
        self.persistent = bool(persistent)
        # Watchdog deadline per persistent-pool dispatch (seconds); the
        # defense against hung — not dead — workers.  Defaults from
        # REPRO_DISPATCH_TIMEOUT; unset/<=0 disables the watchdog.
        if dispatch_timeout is None:
            env = os.environ.get(_DISPATCH_TIMEOUT_ENV)
            if env:
                dispatch_timeout = float(env)
        self.dispatch_timeout = (
            float(dispatch_timeout)
            if dispatch_timeout is not None and dispatch_timeout > 0
            else None
        )
        # Wire-frame every parallel payload (tasks, results, context
        # broadcasts) through repro.runtime.wire: pickle-5 out-of-band
        # buffers, shared memory above SHM_MIN_BYTES, and byte
        # accounting.  ``wire_format=False`` keeps the legacy raw-pickle
        # pipe (the differential-test baseline); the serial path never
        # frames anything either way.
        self.wire_format = bool(wire_format)
        if self.wire_format and self.num_workers > 1:
            # Probe shared memory (spawning the resource_tracker) BEFORE
            # any pool forks, so every worker inherits the one tracker —
            # the single-registration discipline in repro.runtime.wire
            # depends on parent and children sharing it.
            wire._shm_usable()
        self._pool = None
        self._pool_pids: frozenset[int] = frozenset()
        self._installed: set[Hashable] = set()
        self._contexts_shipped = 0
        self._contexts_evicted = 0
        self._dispatches = 0
        self._worker_recoveries = 0
        self._dispatch_retries = 0
        self._timeouts = 0
        self._segments_reaped = 0
        self._quarantined: dict[str, dict] = {}
        self._ipc_bytes_out = 0
        self._ipc_bytes_in = 0
        self._ipc_by_token: dict[Hashable, list[int]] = {}
        self._closed = False

    @property
    def is_serial(self) -> bool:
        return self.num_workers == 1

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def contexts_shipped(self) -> int:
        """How many context broadcasts this executor's persistent pool made.

        The cache-hit observable: calling :meth:`map_shards` twice with
        the same token must raise this by one, not two.  Re-shipping a
        context during crash recovery counts again (the bytes really do
        travel again).
        """
        return self._contexts_shipped

    @property
    def contexts_evicted(self) -> int:
        """How many tokens :meth:`evict` has dropped from the pool."""
        return self._contexts_evicted

    @property
    def worker_recoveries(self) -> int:
        """How many crashed-worker re-install/retry cycles have run."""
        return self._worker_recoveries

    @property
    def dispatch_retries(self) -> int:
        """How many dispatches were retried after a crash or timeout."""
        return self._dispatch_retries

    @property
    def timeouts(self) -> int:
        """How many dispatches hit the watchdog deadline (hung worker)."""
        return self._timeouts

    @property
    def quarantined_shards(self) -> int:
        """How many poison-shard fingerprints are currently quarantined."""
        return len(self._quarantined)

    @property
    def segments_reaped(self) -> int:
        """Orphaned worker shm segments unlinked during pool teardowns."""
        return self._segments_reaped

    def quarantine_info(self) -> dict:
        """Fingerprint -> details for every quarantined poison shard."""
        return {fp: dict(info) for fp, info in self._quarantined.items()}

    @property
    def installed_tokens(self) -> frozenset:
        """Coordinator-side view of tokens currently installed in the pool."""
        return frozenset(self._installed)

    @property
    def dispatches(self) -> int:
        """Non-empty :meth:`map_shards` calls served (serial or pooled)."""
        return self._dispatches

    def pool_stats(self) -> dict:
        """Per-executor pool accounting, cheap enough for any caller.

        Unlike :meth:`worker_stats` this never talks to the pool — it is
        safe to read from a thread that does not own the dispatch path
        (the gateway scrapes it per scheduler session on ``/metrics``).
        """
        return {
            "workers": self.num_workers,
            "pool_live": self._pool is not None,
            "dispatches": self._dispatches,
            "contexts_shipped": self._contexts_shipped,
            "contexts_evicted": self._contexts_evicted,
            "installed_tokens": len(self._installed),
            "ipc_bytes_out": self._ipc_bytes_out,
            "ipc_bytes_in": self._ipc_bytes_in,
        }

    @property
    def ipc_bytes_out(self) -> int:
        """Total payload bytes shipped to the pool (tasks + contexts).

        Counted at the wire layer, per payload: a context broadcast that
        reaches N workers counts its payload once (with shared memory
        the large buffers genuinely transfer once), and a crash-recovery
        re-ship counts again — the bytes really travel again.  Zero on
        serial dispatch and with ``wire_format=False``.
        """
        return self._ipc_bytes_out

    @property
    def ipc_bytes_in(self) -> int:
        """Total payload bytes returned from the pool (shard results)."""
        return self._ipc_bytes_in

    def ipc_stats(self) -> dict:
        """Shipped/returned payload bytes, total and per context token."""
        return {
            "bytes_out": self._ipc_bytes_out,
            "bytes_in": self._ipc_bytes_in,
            "by_token": {
                repr(token): {"out": counts[0], "in": counts[1]}
                for token, counts in self._ipc_by_token.items()
            },
        }

    def _count_ipc(self, token: Hashable, out: int = 0, in_: int = 0) -> None:
        self._ipc_bytes_out += out
        self._ipc_bytes_in += in_
        counts = self._ipc_by_token.setdefault(token, [0, 0])
        counts[0] += out
        counts[1] += in_

    def _decode_results(self, token: Hashable, raw: list) -> list:
        """Decode wire-framed shard results, adopting worker segments."""
        results = []
        for item in raw:
            if isinstance(item, wire.WirePayload):
                obj, opened = wire.unpack_payload(item)
                # The creating worker already closed its handle; adopt
                # unlinks the name now and abandons the mapping to the
                # decoded arrays.
                wire.adopt_segments(opened)
                self._count_ipc(token, in_=item.nbytes)
                results.append(obj)
            else:
                results.append(item)
        return results

    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context()
            barrier = ctx.Barrier(self.num_workers)
            self._pool = ctx.Pool(
                self.num_workers,
                initializer=_init_persistent_worker,
                initargs=(barrier,),
            )
            self._pool_pids = frozenset(p.pid for p in self._pool._pool)
        return self._pool

    def _heal_pool(self) -> None:
        """Rebuild the persistent pool if any worker died or was respawned.

        The primary crash-recovery layer: a SIGKILLed worker can die
        holding the pool's shared task-queue lock, deadlocking any task
        sent to its silently respawned replacement — so a pool whose
        worker pids changed (or that holds a dead worker) is torn down
        and rebuilt before anything is dispatched to it.  Installed
        tokens are marked uninstalled; contexts re-ship lazily on their
        next use.
        """
        pool = self._pool
        if pool is None:
            return
        workers = list(pool._pool)
        if len(workers) == self.num_workers and all(
            p.is_alive() and p.pid in self._pool_pids for p in workers
        ):
            return
        self._segments_reaped += _destroy_pool(pool)
        self._pool = None
        self._pool_pids = frozenset()
        self._installed.clear()
        self._worker_recoveries += 1

    def _force_rebuild(self) -> None:
        """Tear the pool down unconditionally (hung workers pass the
        pid liveness check, so :meth:`_heal_pool` would keep them)."""
        if self._pool is not None:
            self._segments_reaped += _destroy_pool(self._pool)
            self._pool = None
            self._pool_pids = frozenset()
        self._installed.clear()

    def _pool_map(self, fn: Callable, payloads: list, chunksize=None) -> list:
        """Dispatch on the persistent pool, watching liveness *and* time.

        A plain ``pool.map`` blocks forever if a worker dies with a task
        (or mid-barrier), so dispatch is asynchronous and polled: every
        ``_POOL_POLL_SECONDS`` the coordinator compares the pool's
        worker processes against the pids it was built with, and a
        death or respawn raises :class:`WorkerCrashError` immediately —
        the recovery loop in :meth:`map_shards` then rebuilds the pool
        and retries.  With ``dispatch_timeout`` set, a dispatch that
        outlives its deadline raises :class:`WorkerTimeoutError`: the
        second failure mode the liveness poll cannot see is a worker
        that is *hung* (SIGSTOPped, livelocked) rather than dead — it
        keeps passing every pid check while the call never finishes.
        """
        pool = self._ensure_pool()
        kwargs = {} if chunksize is None else {"chunksize": chunksize}
        deadline = None
        if self.dispatch_timeout is not None:
            deadline = time.monotonic() + self.dispatch_timeout
        result = pool.map_async(fn, payloads, **kwargs)
        while True:
            result.wait(_POOL_POLL_SECONDS)
            if result.ready():
                return result.get()
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerTimeoutError(
                    f"pool dispatch exceeded its "
                    f"{self.dispatch_timeout:g}s watchdog deadline "
                    f"(a worker is hung, not dead)",
                    timeout=self.dispatch_timeout,
                )
            workers = list(pool._pool)
            if len(workers) != self.num_workers or any(
                not p.is_alive() or p.pid not in self._pool_pids
                for p in workers
            ):
                raise WorkerCrashError(
                    "a pool worker died while a call was in flight"
                )

    def _broadcast(self, fn: Callable, payload) -> list:
        """Run ``fn(payload)`` exactly once in every worker process.

        One task per worker with ``chunksize=1`` plus the worker-side
        barrier: no worker can take a second broadcast task before every
        worker holds one, so the broadcast reaches each process exactly
        once.  Must never interleave with another broadcast (the
        executor is single-coordinator by design).
        """
        return self._pool_map(fn, [payload] * self.num_workers, chunksize=1)

    def map_shards(
        self,
        fn: Callable[[Any, TaskT], ResultT],
        context: Any,
        tasks: Iterable[TaskT],
        token: Hashable | None = None,
    ) -> list[ResultT]:
        """Run ``fn(context, task)`` for every task; results in task order.

        With one effective worker (or one task) this is an in-process
        loop.  Otherwise ``fn`` and ``context`` must be picklable and
        ``fn`` importable at module level.  ``token`` (persistent pools
        only) identifies the context: a token the pool has already seen
        skips the context broadcast entirely, so only the tasks travel.
        Tokenless calls re-ship the context each time.

        If a worker process crashed since the last call, its respawned
        replacement raises :class:`WorkerCrashError`; the call re-ships
        ``context`` under ``token`` and retries (``fn`` must be pure).
        The error propagates only after repeated recovery failures.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        self._dispatches += 1
        if self._quarantined:
            # Fingerprinting costs a pickle per task, so the gate only
            # runs once a poison shard actually exists.
            for i, task in enumerate(tasks):
                fingerprint = shard_fingerprint(task)
                if fingerprint in self._quarantined:
                    raise PoisonShardError(
                        f"shard {i} matches quarantined poison fingerprint "
                        f"{fingerprint} (first seen at "
                        f"{self._quarantined[fingerprint]})",
                        token=token,
                        shard_index=i,
                        fingerprint=fingerprint,
                    )
        if min(self.num_workers, len(tasks)) == 1:
            return [fn(context, task) for task in tasks]
        if not self.persistent:
            processes = min(self.num_workers, len(tasks))
            ctx = multiprocessing.get_context()
            ipc_token = _ONESHOT_TOKEN if token is None else token
            with ctx.Pool(
                processes, initializer=_init_worker, initargs=(fn, context)
            ) as pool:
                if not self.wire_format:
                    return pool.map(_run_task, tasks)
                owned: list = []
                try:
                    payloads = []
                    for task in tasks:
                        envelope, task_owned = wire.pack_payload(task)
                        owned.extend(task_owned)
                        self._count_ipc(ipc_token, out=envelope.nbytes)
                        payloads.append(envelope)
                    raw = pool.map(_run_task, payloads)
                finally:
                    wire.release_segments(owned)
                return self._decode_results(ipc_token, raw)
        if token is None:
            token = _ONESHOT_TOKEN
            self._installed.discard(token)
        recoveries = 0
        while True:
            self._heal_pool()
            owned = []
            try:
                if token not in self._installed:
                    ctx_payload = context
                    if self.wire_format:
                        ctx_payload, ctx_owned = wire.pack_payload(context)
                        owned.extend(ctx_owned)
                        self._count_ipc(token, out=ctx_payload.nbytes)
                    self._broadcast(_install_context, (token, fn, ctx_payload))
                    self._installed.add(token)
                    self._contexts_shipped += 1
                if self.wire_format:
                    payloads = []
                    for i, task in enumerate(tasks):
                        envelope, task_owned = wire.pack_payload(task)
                        owned.extend(task_owned)
                        self._count_ipc(token, out=envelope.nbytes)
                        payloads.append((token, i, envelope))
                else:
                    payloads = [(token, i, task) for i, task in enumerate(tasks)]
                raw = self._pool_map(_run_token_task, payloads)
                return self._decode_results(token, raw)
            except WorkerTimeoutError:
                # A worker is hung, not dead: it passes every liveness
                # check, so the pool must be torn down by force before
                # the (pure) call is retried.
                self._timeouts += 1
                self._force_rebuild()
                recoveries += 1
                if recoveries > _MAX_RECOVERIES_PER_CALL:
                    raise
                self._dispatch_retries += 1
                self._worker_recoveries += 1
            except WorkerCrashError:
                # A worker died in flight (coordinator liveness poll) or
                # raised the crash-equivalent signal while alive (missing
                # context after a respawn, a vanished task segment);
                # rebuild and retry the whole (pure) call.  The teardown
                # is unconditional even when every worker looks alive:
                # a failed dispatch can strand result segments from
                # workers whose results the failed map discarded, and
                # the teardown's orphan reap is only race-free once no
                # worker is left running.  Shipped bytes stay counted —
                # they really traveled.
                self._force_rebuild()
                recoveries += 1
                if recoveries > _MAX_RECOVERIES_PER_CALL:
                    # The recovery budget is spent on crashes that keep
                    # recurring — the signature of one poison shard, not
                    # of environmental flakiness.  Isolate: re-dispatch
                    # the shards one at a time, quarantine the one that
                    # reproducibly kills its worker (PoisonShardError),
                    # or — if every shard survives isolation — return
                    # the results that probing just computed.
                    wire.release_segments(owned)
                    owned = []
                    return self._isolate_poison(fn, context, tasks, token)
                self._dispatch_retries += 1
                self._worker_recoveries += 1
            finally:
                # Release this attempt's sender-owned segments: every
                # receiver that matters has mapped them (success) or the
                # pool is about to be rebuilt (crash retry repacks).
                wire.release_segments(owned)

    def _dispatch_probe(self, fn, context, task, token, index):
        """Run exactly one shard on a freshly healed pool, no retries.

        The isolation primitive: the task keeps its *original* shard
        index so index-keyed behavior (including injected faults)
        reproduces exactly.  A crash force-rebuilds the pool before
        propagating, so the next probe starts clean.
        """
        self._heal_pool()
        owned: list = []
        try:
            if token not in self._installed:
                ctx_payload = context
                if self.wire_format:
                    ctx_payload, ctx_owned = wire.pack_payload(context)
                    owned.extend(ctx_owned)
                    self._count_ipc(token, out=ctx_payload.nbytes)
                self._broadcast(_install_context, (token, fn, ctx_payload))
                self._installed.add(token)
                self._contexts_shipped += 1
            if self.wire_format:
                envelope, task_owned = wire.pack_payload(task)
                owned.extend(task_owned)
                self._count_ipc(token, out=envelope.nbytes)
                payload = (token, index, envelope)
            else:
                payload = (token, index, task)
            raw = self._pool_map(_run_token_task, [payload])
            return self._decode_results(token, raw)[0]
        except WorkerCrashError:
            self._force_rebuild()
            raise
        finally:
            wire.release_segments(owned)

    def _isolate_poison(self, fn, context, tasks, token) -> list:
        """Find which shard keeps killing workers; quarantine or recover.

        Called when a call's recovery budget is exhausted.  Each shard
        is probed alone: the one that still crashes its worker in
        isolation is quarantined by payload fingerprint and reported as
        :class:`PoisonShardError`.  If every shard survives isolation
        (the crashes were environmental, not payload-bound), the probe
        results themselves are the answer — the call degrades to
        shard-at-a-time execution instead of failing.
        """
        results = []
        for index, task in enumerate(tasks):
            try:
                results.append(
                    self._dispatch_probe(fn, context, task, token, index)
                )
            except WorkerTimeoutError:
                raise
            except WorkerCrashError as exc:
                fingerprint = shard_fingerprint(task)
                self._quarantined[fingerprint] = {
                    "token": repr(token),
                    "shard_index": index,
                }
                raise PoisonShardError(
                    f"shard {index} reproducibly kills its worker even in "
                    f"isolation; quarantined under fingerprint "
                    f"{fingerprint}",
                    token=token,
                    shard_index=index,
                    fingerprint=fingerprint,
                ) from exc
        return results

    def evict(self, token: Hashable) -> bool:
        """Drop ``token``'s context from the coordinator *and* every worker.

        Returns ``True`` if the token was installed.  The worker-side
        registries release their reference immediately (one barrier-
        synchronized broadcast), so the compiled arrays become
        collectable in every process without tearing down the pool.
        Evicting an unknown token is a no-op; the next
        :meth:`map_shards` with the token simply re-ships its context.
        """
        if self._closed:
            return False
        self._heal_pool()
        if token not in self._installed:
            return False
        self._installed.discard(token)
        if self._pool is not None:
            try:
                self._broadcast(_evict_context, token)
            except WorkerCrashError:
                # A worker died under the broadcast; the rebuild drops
                # every context anyway, which subsumes this eviction.
                self._heal_pool()
        self._contexts_evicted += 1
        return True

    def worker_stats(self) -> list[dict]:
        """Per-worker registry occupancy, one dict per live worker process.

        Each dict has ``pid``, ``resident_contexts`` and ``tokens``
        (token reprs, sorted).  Empty when no pool exists (serial
        executors, or a persistent executor before its first parallel
        call).  This is a pool broadcast: do not call it concurrently
        with :meth:`map_shards` from another thread.
        """
        if self._closed or self._pool is None:
            return []
        self._heal_pool()
        if self._pool is None:
            return []
        try:
            return self._broadcast(_collect_worker_stats, None)
        except WorkerCrashError:
            self._heal_pool()
            return []

    def close(self) -> None:
        """Tear down the pool and mark the executor unusable (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._segments_reaped += _destroy_pool(self._pool)
            self._pool = None
            self._pool_pids = frozenset()
        self._installed.clear()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        # Safety net only — call sites own teardown via close()/with.
        try:
            if not self._closed and self._pool is not None:
                self.close()
        except Exception:
            pass
