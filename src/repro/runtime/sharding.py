"""Deterministic contiguous sharding of ordered work lists.

A :class:`ShardPlan` is pure bookkeeping: it fixes how many shards an
``N``-item list is cut into and how large each shard is, independently of
what the items are.  ``merge(split(items))`` returns ``items`` unchanged,
so any per-item computation mapped shard-wise is position-stable — the
invariant every parallel caller (fault simulator, wafer tester, fab)
relies on for bit-identical results at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TypeVar

__all__ = ["ShardPlan"]

T = TypeVar("T")


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous partition of ``num_items`` ordered items.

    ``shard_sizes[i]`` is the length of shard ``i``; shards cover the item
    range in order with no gaps or overlaps.

    This is the determinism half of the runtime's contract: because
    shards are contiguous and :meth:`merge` concatenates results in
    shard order, any per-item computation mapped shard-wise (through
    :class:`~repro.runtime.ParallelExecutor` or not) yields output
    position-identical to the serial loop at every worker count.  The
    other half — compile-once — lives in the executor's token-keyed
    context shipping; plans themselves are pure bookkeeping and never
    touch processes.
    """

    num_items: int
    shard_sizes: tuple[int, ...]

    def __post_init__(self):
        if self.num_items < 0:
            raise ValueError(f"num_items must be >= 0, got {self.num_items}")
        if any(size < 1 for size in self.shard_sizes):
            raise ValueError(f"shard sizes must be >= 1, got {self.shard_sizes}")
        if sum(self.shard_sizes) != self.num_items:
            raise ValueError(
                f"shard sizes {self.shard_sizes} cover "
                f"{sum(self.shard_sizes)} items, not {self.num_items}"
            )

    @classmethod
    def balanced(cls, num_items: int, max_shards: int) -> "ShardPlan":
        """At most ``max_shards`` contiguous shards of near-equal size.

        Sizes differ by at most one (earlier shards take the remainder)
        and no shard is empty: with fewer items than shards the plan
        simply has ``num_items`` single-item shards, so more workers than
        work is never an error.  Zero items yield a zero-shard plan.
        """
        if max_shards < 1:
            raise ValueError(f"max_shards must be >= 1, got {max_shards}")
        count = min(max_shards, num_items)
        if count <= 0:
            if num_items < 0:
                raise ValueError(f"num_items must be >= 0, got {num_items}")
            return cls(0, ())
        base, extra = divmod(num_items, count)
        sizes = tuple(base + (1 if i < extra else 0) for i in range(count))
        return cls(num_items, sizes)

    @property
    def num_shards(self) -> int:
        return len(self.shard_sizes)

    def bounds(self) -> list[tuple[int, int]]:
        """``(start, stop)`` item range of each shard, in shard order."""
        bounds: list[tuple[int, int]] = []
        start = 0
        for size in self.shard_sizes:
            bounds.append((start, start + size))
            start += size
        return bounds

    def split(self, items: Sequence[T]) -> list[list[T]]:
        """Cut ``items`` into per-shard sublists (shard order)."""
        items = list(items)
        if len(items) != self.num_items:
            raise ValueError(
                f"plan covers {self.num_items} items, got {len(items)}"
            )
        return [items[start:stop] for start, stop in self.bounds()]

    def merge(self, shard_results: Sequence[Sequence[T]]) -> list[T]:
        """Concatenate per-shard results back in shard order.

        Shard results need not be item-for-item (a fabrication shard
        returns chips, not wafers), so only the shard *count* is checked;
        callers that are item-aligned get position identity from the
        contiguity of :meth:`split`.
        """
        if len(shard_results) != self.num_shards:
            raise ValueError(
                f"plan has {self.num_shards} shards, got "
                f"{len(shard_results)} results"
            )
        merged: list[T] = []
        for shard in shard_results:
            merged.extend(shard)
        return merged
