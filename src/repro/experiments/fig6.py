"""Fig. 6 — accuracy of the q0(n) approximations.

For ``N = 1000`` and ``n in {2, 4, 8, 16, 32}``, the paper plots the exact
hypergeometric escape probability (A.1) against the corrected (A.2) and
simple ``(1-f)^n`` (A.3) approximations, observing that A.2 coincides with
the exact value throughout while A.3's error "is small but can be noticed"
for large ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detection import (
    escape_probability_corrected,
    escape_probability_exact,
    escape_probability_simple,
)
from repro.paperdata import FIG6_N_VALUES, FIG6_UNIVERSE
from repro.utils.asciiplot import AsciiPlot
from repro.utils.tables import TextTable

__all__ = ["Fig6Result", "run", "render"]


@dataclass(frozen=True)
class Fig6Result:
    """q0(n) tiers on a coverage grid, plus worst-case relative errors."""

    coverages: np.ndarray
    exact: dict[int, np.ndarray]
    corrected: dict[int, np.ndarray]
    simple: dict[int, np.ndarray]
    max_rel_error_corrected: dict[int, float]
    max_rel_error_simple: dict[int, float]


def run(
    universe: int = FIG6_UNIVERSE, num_points: int = 46, *, session=None
) -> Fig6Result:
    """Evaluate all three q0(n) forms over the coverage grid.

    Purely analytic; ``session`` is accepted for runner uniformity (every
    experiment takes one) and ignored.
    """
    coverages = np.linspace(0.0, 0.9, num_points)
    exact: dict[int, np.ndarray] = {}
    corrected: dict[int, np.ndarray] = {}
    simple: dict[int, np.ndarray] = {}
    err_corr: dict[int, float] = {}
    err_simple: dict[int, float] = {}
    for n in FIG6_N_VALUES:
        exact[n] = np.array(
            [
                escape_probability_exact(universe, round(f * universe), n)
                for f in coverages
            ]
        )
        corrected[n] = np.array(
            [escape_probability_corrected(universe, float(f), n) for f in coverages]
        )
        simple[n] = np.array(
            [escape_probability_simple(float(f), n) for f in coverages]
        )
        nonzero = exact[n] > 1e-12
        err_corr[n] = float(
            np.max(np.abs(corrected[n][nonzero] / exact[n][nonzero] - 1.0))
        )
        err_simple[n] = float(
            np.max(np.abs(simple[n][nonzero] / exact[n][nonzero] - 1.0))
        )
    return Fig6Result(
        coverages=coverages,
        exact=exact,
        corrected=corrected,
        simple=simple,
        max_rel_error_corrected=err_corr,
        max_rel_error_simple=err_simple,
    )


def render(result: Fig6Result) -> str:
    """Log plot of the exact curves plus the error table."""
    plot = AsciiPlot(
        width=72,
        height=22,
        title=f"Fig. 6 — q0(n) for N = {FIG6_UNIVERSE} (exact, log y)",
        xlabel="fault coverage f = m/N",
        logy=True,
    )
    for n, curve in result.exact.items():
        mask = curve > 1e-7
        plot.add_series(
            f"n={n}", list(result.coverages[mask]), list(curve[mask])
        )

    table = TextTable(
        ["n", "max rel err A.2 (corrected)", "max rel err A.3 ((1-f)^n)"],
        title="Approximation error vs exact hypergeometric (f <= 0.9)",
    )
    for n in result.exact:
        table.add_row(
            [
                n,
                f"{result.max_rel_error_corrected[n]:.2e}",
                f"{result.max_rel_error_simple[n]:.2e}",
            ]
        )
    footer = (
        "Paper's observation: A.2 coincides with the exact value; the A.3 "
        "error is visible only for large n."
    )
    return "\n\n".join([plot.render(), table.render(), footer])
