"""Regeneration harness for every table and figure in the paper.

One module per artifact:

=============  =====================================================
module         reproduces
=============  =====================================================
``fig1``       Fig. 1 — r(f) curves for (y, n0) in {0.8, 0.2} x {2, 10}
``fig234``     Figs. 2-4 — required coverage vs yield, n0 = 1..12
``fig5``       Fig. 5 — n0 determination from (Monte-Carlo) lot data
``fig6``       Fig. 6 — q0(n) approximation tiers, N = 1000
``table1``     Table 1 — first-fail record of a 277-chip lot
``example``    Section 7 — required coverage vs Wadsack for the LSI chip
``fineline``   Section 8 — feature-shrink study
=============  =====================================================

``runner.main()`` (installed as ``repro-experiments``) runs everything and
prints the paper-versus-measured comparison for each artifact.  Every
``run`` accepts ``session=`` (a :class:`repro.api.Session`) for execution
policy; the Monte-Carlo ones draw their engine, worker pool, and
compiled-circuit caches from it.
"""

from repro.experiments import config

__all__ = ["config"]
