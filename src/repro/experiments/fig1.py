"""Fig. 1 — field reject rate versus fault coverage.

The paper plots ``r(f)`` (log scale) for yields 0.80 and 0.20, each at
``n0 = 2`` and ``n0 = 10``, and reads off the coverage needed for a
0.5-percent reject rate: about 95 / 38 percent at 80-percent yield and
99 / 63 percent at 20-percent yield.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage_solver import required_coverage
from repro.core.reject_rate import field_reject_rate
from repro.paperdata import FIG1_CASES
from repro.utils.asciiplot import AsciiPlot
from repro.utils.tables import TextTable

__all__ = ["Fig1Result", "run", "render"]

# The coverage values the paper's prose quotes for r <= 0.005.
_PAPER_SPOT_COVERAGE = {
    (0.80, 2.0): 0.95,
    (0.80, 10.0): 0.38,
    (0.20, 2.0): 0.99,
    (0.20, 10.0): 0.63,
}
_SPOT_REJECT_RATE = 0.005


@dataclass(frozen=True)
class Fig1Result:
    """Curves and spot values of the Fig. 1 reproduction."""

    coverages: np.ndarray
    curves: dict[tuple[float, float], np.ndarray]
    spot_values: dict[tuple[float, float], float]
    paper_spot_values: dict[tuple[float, float], float]


def run(num_points: int = 101, *, session=None) -> Fig1Result:
    """Compute the four r(f) curves and the r = 0.5 percent spot coverages.

    Purely analytic; ``session`` is accepted for runner uniformity (every
    experiment takes one) and ignored.
    """
    coverages = np.linspace(0.0, 0.999, num_points)
    curves = {}
    spots = {}
    for yield_, n0 in FIG1_CASES:
        curves[(yield_, n0)] = np.array(
            [field_reject_rate(float(f), yield_, n0) for f in coverages]
        )
        spots[(yield_, n0)] = required_coverage(yield_, n0, _SPOT_REJECT_RATE)
    return Fig1Result(
        coverages=coverages,
        curves=curves,
        spot_values=spots,
        paper_spot_values=dict(_PAPER_SPOT_COVERAGE),
    )


def render(result: Fig1Result) -> str:
    """Render the figure as an ASCII log plot plus the spot-value table."""
    plot = AsciiPlot(
        width=72,
        height=24,
        title="Fig. 1 — field reject rate r(f) vs fault coverage f (log y)",
        xlabel="fault coverage f",
        logy=True,
    )
    for (yield_, n0), curve in result.curves.items():
        mask = curve > 1e-4
        plot.add_series(
            f"y={yield_:.2f} n0={n0:g}",
            list(result.coverages[mask]),
            list(curve[mask]),
        )

    table = TextTable(
        ["yield", "n0", "f for r<=0.5% (ours)", "f (paper)", "delta"],
        title="Coverage required for a 0.5 percent field reject rate",
    )
    for key, ours in result.spot_values.items():
        paper = result.paper_spot_values[key]
        table.add_row(
            [key[0], key[1], f"{ours:.3f}", f"{paper:.2f}", f"{ours - paper:+.3f}"]
        )
    return plot.render() + "\n\n" + table.render()
