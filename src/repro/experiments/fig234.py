"""Figs. 2-4 — required fault coverage versus yield.

One figure per target reject rate (1-in-100, 1-in-200, 1-in-1000), each a
family of curves for ``n0 = 1..12``.  The paper's quoted spot value: at
``r = 0.001``, yield 0.3, ``n0 = 8``, the required coverage is about 85
percent (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage_solver import CoverageCurve, coverage_sweep
from repro.paperdata import FIG234_N0_FAMILY, FIG234_REJECT_RATES
from repro.utils.asciiplot import AsciiPlot
from repro.utils.tables import TextTable

__all__ = ["Fig234Result", "run", "render"]

PAPER_FIG4_SPOT = {"reject_rate": 0.001, "yield": 0.3, "n0": 8, "coverage": 0.85}


@dataclass(frozen=True)
class Fig234Result:
    """One family of required-coverage curves per reject rate."""

    families: dict[float, list[CoverageCurve]]
    fig4_spot_value: float

    def curve(self, reject_rate: float, n0: float) -> CoverageCurve:
        for c in self.families[reject_rate]:
            if c.n0 == n0:
                return c
        raise KeyError(f"no curve for r={reject_rate}, n0={n0}")


def run(num_yields: int = 50, *, session=None) -> Fig234Result:
    """Sweep all three figures' curve families.

    Purely analytic; ``session`` is accepted for runner uniformity (every
    experiment takes one) and ignored.
    """
    yields = np.linspace(0.02, 0.98, num_yields)
    families = {
        rate: [coverage_sweep(float(n0), rate, yields=yields) for n0 in FIG234_N0_FAMILY]
        for rate in FIG234_REJECT_RATES
    }
    spot = families[0.001][FIG234_N0_FAMILY.index(8)].interpolate(0.3)
    return Fig234Result(families=families, fig4_spot_value=spot)


def render(result: Fig234Result) -> str:
    """Render the three figures plus the Fig. 4 spot-value check."""
    fig_names = {0.01: "Fig. 2 (r = 1/100)", 0.005: "Fig. 3 (r = 1/200)",
                 0.001: "Fig. 4 (r = 1/1000)"}
    sections = []
    for rate, curves in result.families.items():
        plot = AsciiPlot(
            width=72,
            height=20,
            title=f"{fig_names[rate]} — required coverage vs yield, n0 = 1..12",
            xlabel="yield y",
        )
        for curve in curves:
            if curve.n0 in (1, 2, 4, 8, 12):  # legible subset
                plot.add_series(
                    f"n0={curve.n0:g}", list(curve.yields), list(curve.coverages)
                )
        sections.append(plot.render())

        table = TextTable(
            ["n0"] + [f"y={y:.1f}" for y in (0.1, 0.3, 0.5, 0.7, 0.9)],
            title=f"{fig_names[rate]}: required f at sample yields",
        )
        for curve in curves:
            table.add_row(
                [f"{curve.n0:g}"]
                + [f"{curve.interpolate(y):.3f}" for y in (0.1, 0.3, 0.5, 0.7, 0.9)]
            )
        sections.append(table.render())

    spot = PAPER_FIG4_SPOT
    sections.append(
        f"Fig. 4 spot check: y={spot['yield']}, n0={spot['n0']}, "
        f"r={spot['reject_rate']} -> required f = {result.fig4_spot_value:.3f} "
        f"(paper: ~{spot['coverage']:.2f})"
    )
    return "\n\n".join(sections)
