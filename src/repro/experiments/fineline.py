"""Section 8 — the fine-line (feature shrink) study.

The paper's closing prediction: shrinking a circuit raises yield (smaller
area) and raises ``n0`` (more logic per defect footprint), and *both*
effects lower the required fault coverage.  We quantify the prediction
with :class:`~repro.core.scaling.ShrinkStudy` and ablate the two effects
(yield-only versus combined), then cross-check the ``n0`` mechanism
against the Monte-Carlo fab by shrinking the defect footprint relative to
the layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Session, resolve_session
from repro.core.scaling import ShrinkScenario, ShrinkStudy
from repro.experiments import config
from repro.manufacturing.process import ProcessRecipe
from repro.utils.tables import TextTable
from repro.yieldmodels.models import NegativeBinomialYield

__all__ = ["FinelineResult", "run", "render"]

_SHRINKS = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]
_REJECT_RATE = 0.005


@dataclass(frozen=True)
class FinelineResult:
    """Shrink sweeps (combined and yield-only) plus fab cross-check."""

    combined: list[ShrinkScenario]
    yield_only: list[ShrinkScenario]
    fab_rows: list[dict]


def run(
    seed: int = config.LOT_SEED,
    *,
    session: Session | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
) -> FinelineResult:
    """Run the analytic shrink study and the fab cross-check.

    ``session`` supplies the fault-simulation engine and worker pool for
    the test program build, each shrink's fabrication, and the first-fail
    testing; the ``engine`` / ``workers`` kwargs are deprecated shims.
    Results are engine- and worker-count-independent.
    """
    base = ShrinkStudy(
        yield_model=NegativeBinomialYield(clustering=2.0),
        defect_density=2.0,
        base_area=1.0,
        base_n0=8.0,
        multiplicity_exponent=2.0,
    )
    frozen = ShrinkStudy(
        yield_model=NegativeBinomialYield(clustering=2.0),
        defect_density=2.0,
        base_area=1.0,
        base_n0=8.0,
        multiplicity_exponent=0.0,
    )
    combined = base.sweep(_SHRINKS, _REJECT_RATE)
    yield_only = frozen.sweep(_SHRINKS, _REJECT_RATE)

    # Fab cross-check: same chip, same absolute defect footprint, denser
    # layout (modeled by a *larger* footprint relative to the cell pitch).
    # Each shrink's lot is also first-fail-tested against the canonical
    # program, tying the n0 mechanism to an observed tester quantity.
    with resolve_session(
        session, engine=engine, workers=workers, owner="fineline.run()"
    ) as session:
        chip = config.make_chip()
        program = config.make_program(chip, session=session)
        fab_rows = []
        for shrink in (1.0, 0.7, 0.5):
            recipe = ProcessRecipe(
                defect_density=1.2,
                clustering=0.5,
                mean_defect_radius=0.02 / shrink,  # relative footprint grows
                activation_probability=0.7,
            )
            lot = session.fabricate(chip, recipe, 600, seed=seed)
            records = session.test(lot, program).records
            fab_rows.append(
                {
                    "shrink": shrink,
                    "empirical_n0": lot.empirical_n0(),
                    "empirical_yield": lot.empirical_yield(),
                    "fraction_failed": sum(
                        r.first_fail is not None for r in records
                    ) / len(records),
                }
            )
    return FinelineResult(
        combined=combined, yield_only=yield_only, fab_rows=fab_rows
    )


def render(result: FinelineResult) -> str:
    """Tables for the analytic sweeps and the fab n0 mechanism check."""
    table = TextTable(
        [
            "shrink",
            "area",
            "yield",
            "n0",
            "required f",
            "required f (n0 frozen)",
        ],
        title=(
            f"Section 8 shrink study (target r = {_REJECT_RATE}): combined "
            "vs yield-only effect"
        ),
    )
    for combined, frozen in zip(result.combined, result.yield_only):
        table.add_row(
            [
                f"{combined.shrink:.1f}",
                f"{combined.area:.2f}",
                f"{combined.yield_:.3f}",
                f"{combined.n0:.1f}",
                f"{combined.required_coverage:.3f}",
                f"{frozen.required_coverage:.3f}",
            ]
        )

    fab_table = TextTable(
        ["shrink", "empirical n0", "empirical yield", "fraction failed"],
        title="Fab cross-check: finer features -> more faults per defect",
    )
    for row in result.fab_rows:
        fab_table.add_row(
            [
                f"{row['shrink']:.1f}",
                f"{row['empirical_n0']:.2f}",
                f"{row['empirical_yield']:.3f}",
                f"{row['fraction_failed']:.3f}",
            ]
        )
    return table.render() + "\n\n" + fab_table.render()
