"""Run every experiment and print the paper-versus-measured report.

Installed as the ``repro-experiments`` console script::

    repro-experiments                        # run everything
    repro-experiments fig1 fig6              # run a subset
    repro-experiments --list                 # print the experiment names
    repro-experiments --output-dir results/  # also write one .txt each
    repro-experiments --engine compiled      # pre-batching fault-sim engine
    repro-experiments --workers auto         # process-sharded Monte Carlo
    repro-experiments --server 127.0.0.1:7642  # run on a repro-server
    repro-experiments --server 127.0.0.1:7641  # on a repro-router federation
    repro-experiments --server http://127.0.0.1:8642  # on a repro-gateway

One :class:`repro.api.Session` carries the selected engine and worker
pool across every experiment of an invocation: each ``run(session=...)``
draws on the same persistent pool and compiled-circuit caches, so the
CLI is also the smallest demonstration of the session API.  With
``--server ADDR`` the experiments run on a remote
:class:`repro.server.LotServer` — or a :class:`repro.router.Router`
federation of them (same protocol; experiments shard across backends by
name), or, with an ``http(s)://`` address, a
:class:`repro.gateway.Gateway` — instead (which owns execution policy,
so ``--engine`` / ``--workers`` cannot be combined with it); reports
are bit-identical either way.  Unknown experiment names are rejected up
front (exit code 2, valid choices listed) before anything runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.api import Session, resolve_session
from repro.simulator import ENGINES
from repro.experiments import example, fig1, fig234, fig5, fig6, fineline, table1
from repro.runtime import resolve_workers

__all__ = ["main", "run_experiment", "EXPERIMENTS"]

EXPERIMENTS = {
    "fig1": (fig1.run, fig1.render),
    "fig234": (fig234.run, fig234.render),
    "fig5": (fig5.run, fig5.render),
    "fig6": (fig6.run, fig6.render),
    "table1": (table1.run, table1.render),
    "example": (example.run, example.render),
    "fineline": (fineline.run, fineline.render),
}


def run_experiment(
    name: str,
    *,
    session: Session | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
) -> str:
    """Run one experiment by name and return its rendered report.

    ``session`` supplies execution policy — engine and worker pool — for
    the experiments that simulate (fig5, table1, example, fineline); the
    purely analytic ones accept and ignore it.  Every ``run`` takes the
    session directly, so there is no per-experiment kwarg sniffing.  The
    ``engine`` / ``workers`` kwargs are deprecated shims wrapping a
    throwaway session.
    """
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    run, render = EXPERIMENTS[name]
    with resolve_session(
        session, engine=engine, workers=workers, owner="run_experiment()"
    ) as session:
        return render(run(session=session))


def _parse_workers(value: str) -> int | str:
    """argparse type for ``--workers``: an integer >= 1 or ``auto``."""
    workers: int | str = value
    if value != "auto":
        try:
            workers = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"workers must be an integer >= 1 or 'auto', got {value!r}"
            ) from None
    try:
        resolve_workers(workers)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return workers


def main(argv: list[str] | None = None) -> int:
    """Console entry point."""
    parser = argparse.ArgumentParser(
        description=(
            "Regenerate the tables and figures of 'LSI Product Quality and "
            "Fault Coverage' (Agrawal, Seth & Agrawal, DAC 1981)."
        )
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"subset to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the available experiment names and exit",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="also write each report to <dir>/<experiment>.txt",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="batch",
        help=(
            "fault-simulation engine for the Monte-Carlo experiments "
            "(default: batch, the fault-parallel NumPy engine; "
            "'batch-jit'/'batch-gpu' run the kernel backends when "
            "numba/CuPy are installed, 'auto' picks per shape). Note: "
            "lot testing needs multi-fault word-level machines, so with "
            "'event' the wafer tester falls back to the serial compiled "
            "loop; 'event' governs the coverage-curve fault simulation."
        ),
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        help=(
            "worker processes for the Monte-Carlo experiments: an integer "
            "or 'auto' (one per CPU). Default: 1, serial. Results are "
            "bit-identical at every worker count."
        ),
    )
    parser.add_argument(
        "--server",
        metavar="ADDR",
        default=None,
        help=(
            "run the experiments on a repro-server or repro-router at "
            "ADDR ('host:port', 'unix:/path', a comma-separated "
            "failover list, or an 'http://'/'https://' URL for a "
            "repro-gateway) instead of in-process; the server owns "
            "engine/workers policy, so this flag excludes --engine and "
            "--workers"
        ),
    )
    args = parser.parse_args(argv)
    if args.server is not None and (args.engine != "batch" or args.workers != 1):
        parser.error(
            "--server is mutually exclusive with --engine/--workers: "
            "execution policy belongs to the server (repro-server "
            "--engine ... --workers ...)"
        )
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(repr(name) for name in unknown)}; "
            f"choose from {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    if args.output_dir is not None:
        args.output_dir.mkdir(parents=True, exist_ok=True)

    def report_all(run_one) -> None:
        for name in names:
            start = time.perf_counter()
            report = run_one(name)
            elapsed = time.perf_counter() - start
            banner = f"=== {name} ({elapsed:.1f}s) ==="
            print(banner)
            print(report)
            print()
            if args.output_dir is not None:
                (args.output_dir / f"{name}.txt").write_text(report + "\n")

    if args.server is not None:
        # Imported lazily so the in-process path never pays for it.  An
        # http(s):// address targets the HTTP/JSON gateway; anything else
        # keeps the original TCP/unix framed protocol.
        if args.server.startswith(("http://", "https://")):
            from repro.gateway import GatewayClient as Client
        else:
            from repro.server import Client

        with Client(args.server) as client:
            report_all(client.run_experiment)
    else:
        with Session(engine=args.engine, workers=args.workers) as session:
            report_all(lambda name: run_experiment(name, session=session))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
