"""Run every experiment and print the paper-versus-measured report.

Installed as the ``repro-experiments`` console script::

    repro-experiments                        # run everything
    repro-experiments fig1 fig6              # run a subset
    repro-experiments --output-dir results/  # also write one .txt each
    repro-experiments --engine compiled      # pre-batching fault-sim engine
    repro-experiments --workers auto         # process-sharded Monte Carlo
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from pathlib import Path

from repro.experiments import example, fig1, fig234, fig5, fig6, fineline, table1
from repro.runtime import resolve_workers

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "fig1": (fig1.run, fig1.render),
    "fig234": (fig234.run, fig234.render),
    "fig5": (fig5.run, fig5.render),
    "fig6": (fig6.run, fig6.render),
    "table1": (table1.run, table1.render),
    "example": (example.run, example.render),
    "fineline": (fineline.run, fineline.render),
}


def run_experiment(
    name: str,
    engine: str | None = None,
    workers: int | str | None = None,
) -> str:
    """Run one experiment by name and return its rendered report.

    ``engine`` selects the fault-simulation engine and ``workers`` the
    process count for experiments that simulate (fig5, table1, example,
    fineline); the purely analytic ones ignore both.
    """
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    run, render = EXPERIMENTS[name]
    kwargs = {}
    parameters = inspect.signature(run).parameters
    if engine is not None and "engine" in parameters:
        kwargs["engine"] = engine
    if workers is not None and "workers" in parameters:
        kwargs["workers"] = workers
    return render(run(**kwargs))


def _parse_workers(value: str) -> int | str:
    """argparse type for ``--workers``: an integer >= 1 or ``auto``."""
    workers: int | str = value
    if value != "auto":
        try:
            workers = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"workers must be an integer >= 1 or 'auto', got {value!r}"
            ) from None
    try:
        resolve_workers(workers)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return workers


def main(argv: list[str] | None = None) -> int:
    """Console entry point."""
    parser = argparse.ArgumentParser(
        description=(
            "Regenerate the tables and figures of 'LSI Product Quality and "
            "Fault Coverage' (Agrawal, Seth & Agrawal, DAC 1981)."
        )
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"subset to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="also write each report to <dir>/<experiment>.txt",
    )
    parser.add_argument(
        "--engine",
        choices=("batch", "compiled", "event"),
        default=None,
        help=(
            "fault-simulation engine for the Monte-Carlo experiments "
            "(default: batch, the fault-parallel NumPy engine). Note: "
            "lot testing needs multi-fault word-level machines, so with "
            "'event' the wafer tester falls back to the serial compiled "
            "loop; 'event' governs the coverage-curve fault simulation."
        ),
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        help=(
            "worker processes for the Monte-Carlo experiments: an integer "
            "or 'auto' (one per CPU). Default: 1, serial. Results are "
            "bit-identical at every worker count."
        ),
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)
    if args.output_dir is not None:
        args.output_dir.mkdir(parents=True, exist_ok=True)

    for name in names:
        start = time.perf_counter()
        try:
            report = run_experiment(name, engine=args.engine, workers=args.workers)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        banner = f"=== {name} ({elapsed:.1f}s) ==="
        print(banner)
        print(report)
        print()
        if args.output_dir is not None:
            (args.output_dir / f"{name}.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
