"""Fig. 5 — determination of ``n0`` from experimental data.

The paper overlays the Table 1 points on the ``P(f)`` family for
``n0 = 1..12`` and selects the closest member (``n0 = 8``); the slope
shortcut gives 8.8.  We do the same twice: on the paper's published points
(checking we recover the paper's own estimates) and on the Monte-Carlo
lot's points (checking calibration recovers an effective ``n0`` whose
``P(f)`` curve matches the simulated lot).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import Session, resolve_session
from repro.core.estimation import (
    CoveragePoint,
    estimate_n0_bootstrap,
    estimate_n0_least_squares,
    estimate_n0_mle,
    estimate_n0_slope,
)
from repro.core.reject_rate import reject_fraction
from repro.experiments import config
from repro.paperdata import (
    PAPER_N0_FIT,
    PAPER_N0_SLOPE,
    TABLE1_LOT_SIZE,
    TABLE1_POINTS,
    TABLE1_YIELD,
)
from repro.utils.asciiplot import AsciiPlot
from repro.utils.tables import TextTable

__all__ = ["Fig5Result", "run", "render"]


@dataclass(frozen=True)
class Fig5Result:
    """n0 estimates on paper data and on the Monte-Carlo lot."""

    paper_n0_least_squares: float
    paper_n0_slope: float
    paper_n0_mle: float
    paper_n0_ci: tuple[float, float]
    mc_points: list[CoveragePoint]
    mc_yield: float
    mc_true_n0: float
    mc_n0_least_squares: float
    mc_n0_slope: float
    mc_fit_rms: float


def run(
    seed: int = config.LOT_SEED,
    *,
    session: Session | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
) -> Fig5Result:
    """Estimate n0 from the paper's Table 1 and from a fresh MC lot.

    ``session`` supplies the fault-simulation engine and worker pool for
    the program's coverage curve, fabrication, and the lot tester; the
    ``engine`` / ``workers`` kwargs are deprecated shims.  Results are
    engine- and worker-count-independent.
    """
    paper_ls = estimate_n0_least_squares(TABLE1_POINTS, TABLE1_YIELD)
    paper_slope = estimate_n0_slope(TABLE1_POINTS, yield_=TABLE1_YIELD)
    paper_mle = estimate_n0_mle(TABLE1_POINTS, TABLE1_YIELD, TABLE1_LOT_SIZE)
    _, ci_low, ci_high = estimate_n0_bootstrap(
        TABLE1_POINTS, TABLE1_YIELD, TABLE1_LOT_SIZE, seed=0
    )

    with resolve_session(
        session, engine=engine, workers=workers, owner="fig5.run()"
    ) as session:
        chip = config.make_chip()
        program = config.make_program(chip, session=session)
        lot = config.make_lot(chip, seed=seed, session=session)
        lot_result = session.test(lot, program)
    points = lot_result.coverage_points()
    mc_yield = lot.empirical_yield()
    mc_ls = estimate_n0_least_squares(points, mc_yield)
    mc_slope = estimate_n0_slope(points, yield_=mc_yield)
    rms = float(
        np.sqrt(
            np.mean(
                [
                    (reject_fraction(p.coverage, mc_yield, mc_ls) - p.fraction_failed)
                    ** 2
                    for p in points
                ]
            )
        )
    )
    return Fig5Result(
        paper_n0_least_squares=paper_ls,
        paper_n0_slope=paper_slope,
        paper_n0_mle=paper_mle,
        paper_n0_ci=(ci_low, ci_high),
        mc_points=points,
        mc_yield=mc_yield,
        mc_true_n0=lot.empirical_n0(),
        mc_n0_least_squares=mc_ls,
        mc_n0_slope=mc_slope,
        mc_fit_rms=rms,
    )


def render(result: Fig5Result) -> str:
    """Render the P(f) family with MC points, plus the estimate table."""
    plot = AsciiPlot(
        width=72,
        height=22,
        title="Fig. 5 — P(f) family (n0 = 1..12) with Monte-Carlo lot points (#)",
        xlabel="fault coverage f",
    )
    coverages = np.linspace(0.0, 1.0, 60)
    for n0 in (1, 2, 4, 8, 12):
        plot.add_series(
            f"n0={n0}",
            list(coverages),
            [reject_fraction(float(f), result.mc_yield, n0) for f in coverages],
        )
    plot.add_series(
        "MC lot",
        [p.coverage for p in result.mc_points],
        [p.fraction_failed for p in result.mc_points],
    )

    table = TextTable(
        ["estimator", "paper data", "paper's value", "MC lot", "MC truth"],
        title="n0 estimates",
    )
    table.add_row(
        [
            "least squares",
            f"{result.paper_n0_least_squares:.1f}",
            f"{PAPER_N0_FIT:.1f}",
            f"{result.mc_n0_least_squares:.1f}",
            f"{result.mc_true_n0:.1f}",
        ]
    )
    table.add_row(
        [
            "slope (Eq. 10)",
            f"{result.paper_n0_slope:.1f}",
            f"{PAPER_N0_SLOPE:.1f}",
            f"{result.mc_n0_slope:.1f}",
            "",
        ]
    )
    table.add_row(
        ["MLE", f"{result.paper_n0_mle:.1f}", "(not in paper)", "", ""]
    )
    footer = (
        f"Bootstrap 90% CI for the paper-data n0: "
        f"[{result.paper_n0_ci[0]:.1f}, {result.paper_n0_ci[1]:.1f}] "
        f"(excludes the n0 = 3..4 the paper rules out)\n"
        f"MC fit quality: RMS(P_fit - observed) = {result.mc_fit_rms:.3f} "
        f"over {len(result.mc_points)} checkpoints"
    )
    return "\n\n".join([plot.render(), table.render(), footer])
