"""Table 1 — the first-fail record of a production lot.

Two reproductions side by side:

1. **Analytic fit to the paper's own data**: the published Table 1 rows
   against the Eq. 9 curve at the paper's fitted ``n0 = 8`` — verifying we
   reproduce the *analysis*.
2. **Monte-Carlo regeneration**: fabricate a 277-chip lot of the synthetic
   chip at 7-percent yield, test it first-fail on a random-pattern program,
   and print the same cumulative table — verifying the *experiment* can be
   regenerated end to end from our substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Session, resolve_session
from repro.core.estimation import CoveragePoint
from repro.core.reject_rate import reject_fraction
from repro.experiments import config
from repro.manufacturing.lot import FabricatedLot
from repro.paperdata import PAPER_N0_FIT, TABLE1_LOT_SIZE, TABLE1_POINTS, TABLE1_YIELD
from repro.tester.results import LotTestResult
from repro.utils.tables import TextTable

__all__ = ["Table1Result", "run", "render"]


@dataclass(frozen=True)
class Table1Result:
    """Paper data with model fit, plus the Monte-Carlo lot's own table."""

    paper_points: list[CoveragePoint]
    model_fractions: list[float]
    lot: FabricatedLot
    lot_result: LotTestResult
    mc_points: list[CoveragePoint]


def run(
    lot_size: int = TABLE1_LOT_SIZE,
    num_patterns: int = config.NUM_PATTERNS,
    seed: int = config.LOT_SEED,
    *,
    session: Session | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
) -> Table1Result:
    """Fit the paper's rows and regenerate the experiment by Monte Carlo.

    ``session`` supplies the fault-simulation engine and worker pool for
    the program's coverage curve, fabrication, and the lot tester; the
    ``engine`` / ``workers`` kwargs are deprecated shims.  Results are
    engine- and worker-count-independent.
    """
    model_fractions = [
        reject_fraction(p.coverage, TABLE1_YIELD, PAPER_N0_FIT)
        for p in TABLE1_POINTS
    ]

    with resolve_session(
        session, engine=engine, workers=workers, owner="table1.run()"
    ) as session:
        chip = config.make_chip()
        program = config.make_program(
            chip, num_patterns=num_patterns, session=session
        )
        lot = config.make_lot(
            chip, num_chips=lot_size, seed=seed, session=session
        )
        lot_result = session.test(lot, program)
    # Sample the Monte-Carlo table at paper-like coverage checkpoints.
    curve = program.coverage_curve
    checkpoints = []
    for target in (0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.36, 0.45, 0.50, 0.65):
        k = int(min(range(len(curve)), key=lambda i: abs(curve[i] - target)))
        if k not in checkpoints:
            checkpoints.append(k)
    mc_points = lot_result.coverage_points(checkpoints)
    return Table1Result(
        paper_points=list(TABLE1_POINTS),
        model_fractions=model_fractions,
        lot=lot,
        lot_result=lot_result,
        mc_points=mc_points,
    )


def render(result: Table1Result) -> str:
    """Side-by-side tables: paper rows + fit, then the regenerated lot."""
    fit_table = TextTable(
        ["coverage (pct)", "fraction failed (paper)", "P(f) at n0=8", "delta"],
        title=(
            f"Table 1 (paper data, {TABLE1_LOT_SIZE} chips, y={TABLE1_YIELD}) "
            f"vs Eq. 9 fit at n0={PAPER_N0_FIT:g}"
        ),
    )
    for point, model in zip(result.paper_points, result.model_fractions):
        fit_table.add_row(
            [
                f"{point.coverage * 100:.0f}",
                f"{point.fraction_failed:.2f}",
                f"{model:.2f}",
                f"{model - point.fraction_failed:+.3f}",
            ]
        )

    mc_header = (
        f"Monte-Carlo regeneration: {len(result.lot)} chips, "
        f"empirical yield {result.lot.empirical_yield():.3f}, "
        f"true n0 {result.lot.empirical_n0():.2f}"
    )
    mc_table = result.lot_result.to_table(
        checkpoints=None
    )
    mc_sample = TextTable(
        ["coverage (pct)", "fraction failed (MC lot)"],
        title="Monte-Carlo lot at paper-like checkpoints",
    )
    for point in result.mc_points:
        mc_sample.add_row(
            [f"{point.coverage * 100:.1f}", f"{point.fraction_failed:.2f}"]
        )
    return "\n\n".join(
        [fit_table.render(), mc_header, mc_sample.render()]
    )
