"""Section 7 — the worked LSI-chip example.

For the 25 000-transistor chip (yield 0.07, calibrated ``n0 = 8``) the
paper concludes: 80-percent coverage suffices for a 1-percent field reject
rate and 95 percent for 1-in-1000 — against 99 and 99.9 percent under
Wadsack's model, "almost unachievable goals for LSI circuits".

We reproduce the numbers and additionally validate them against the
Monte-Carlo fab: test the canonical lot with programs truncated to various
coverages and compare the observed escape rates with Eq. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Session, resolve_session
from repro.core.quality import QualityModel
from repro.core.reject_rate import field_reject_rate
from repro.experiments import config
from repro.paperdata import PAPER_N0_FIT, TABLE1_YIELD
from repro.utils.tables import TextTable

__all__ = ["ExampleResult", "run", "render"]

PAPER_VALUES = {
    0.01: {"ours_expected": 0.80, "wadsack": 0.99},
    0.001: {"ours_expected": 0.95, "wadsack": 0.999},
}


@dataclass(frozen=True)
class ExampleResult:
    """Required-coverage comparison plus Monte-Carlo escape validation."""

    model: QualityModel
    required: dict[float, float]
    wadsack: dict[float, float]
    mc_rows: list[dict]


def run(
    seed: int = config.LOT_SEED,
    mc_lot_size: int = 4000,
    *,
    session: Session | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
) -> ExampleResult:
    """Compute the Section 7 numbers and validate r(f) by Monte Carlo.

    The validation follows the paper's methodology: calibrate the effective
    ``n0`` once from the lot's first-fail curve (a *calibration* lot), then
    predict the escape rate of truncated programs on a fresh *production*
    lot and compare with the observed escapes.  ``session`` supplies the
    fault-simulation engine and worker pool (the ``engine`` / ``workers``
    kwargs are deprecated shims); results are engine- and
    worker-count-independent.
    """
    from repro.core.estimation import estimate_n0_least_squares

    model = QualityModel(yield_=TABLE1_YIELD, n0=PAPER_N0_FIT)
    required = {r: model.required_coverage(r) for r in PAPER_VALUES}
    wadsack = {r: model.wadsack_required_coverage(r) for r in PAPER_VALUES}

    with resolve_session(
        session, engine=engine, workers=workers, owner="example.run()"
    ) as session:
        chip = config.make_chip()
        program = config.make_program(chip, session=session)

        # Calibration lot: fit effective n0 from the full fail curve
        # (Fig. 5).
        calibration_lot = config.make_lot(
            chip, num_chips=mc_lot_size, seed=seed, session=session
        )
        calibration = session.test(calibration_lot, program)
        mc_yield = calibration_lot.empirical_yield()
        n0_effective = estimate_n0_least_squares(
            calibration.coverage_points(), mc_yield
        )

        # Production lot: different seed, truncated programs, observed
        # escapes.
        production_lot = config.make_lot(
            chip, num_chips=mc_lot_size, seed=seed + 1, session=session
        )
        points = []
        for frac in (0.02, 0.1, 0.3, 1.0):
            truncated = program.truncated(max(1, int(len(program) * frac)))
            result = session.test(production_lot, truncated)
            coverage = truncated.final_coverage
            points.append(
                {
                    "program_coverage": coverage,
                    "observed_reject_rate": result.empirical_reject_rate(),
                    "observed_escapes": len(result.escapes()),
                    "shipped": sum(r.passed for r in result.records),
                    "predicted_reject_rate": field_reject_rate(
                        coverage, mc_yield, n0_effective
                    ),
                }
            )
    return ExampleResult(
        model=model, required=required, wadsack=wadsack, mc_rows=points
    )


def render(result: ExampleResult) -> str:
    """Tables: required coverage vs Wadsack, then MC escape validation."""
    table = TextTable(
        ["target r", "required f (ours)", "paper", "Wadsack f", "paper (Wadsack)"],
        title=(
            f"Section 7 example: y = {result.model.yield_}, "
            f"n0 = {result.model.n0:g}"
        ),
    )
    for rate, info in PAPER_VALUES.items():
        table.add_row(
            [
                f"{rate:g}",
                f"{result.required[rate]:.3f}",
                f"~{info['ours_expected']:.2f}",
                f"{result.wadsack[rate]:.4f}",
                f"~{info['wadsack']:.3f}",
            ]
        )

    mc_table = TextTable(
        [
            "program coverage",
            "shipped",
            "escapes",
            "observed r",
            "Eq. 8 r (calibrated n0)",
        ],
        title=(
            "Monte-Carlo validation: n0 calibrated on one lot, escapes "
            "predicted on a fresh lot"
        ),
    )
    for row in result.mc_rows:
        mc_table.add_row(
            [
                f"{row['program_coverage']:.3f}",
                row["shipped"],
                row["observed_escapes"],
                f"{row['observed_reject_rate']:.4f}",
                f"{row['predicted_reject_rate']:.4f}",
            ]
        )
    return table.render() + "\n\n" + mc_table.render()
