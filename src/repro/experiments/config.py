"""Canonical configuration for the Monte-Carlo experiments.

One synthetic chip and one process recipe, tuned so the fabricated lots
match the paper's Section 7 conditions: yield near 7 percent and a true
``n0`` near 8.  Every experiment that needs a lot or a test program builds
it from here, so Table 1 and Fig. 5 describe the *same* experiment, as in
the paper.

Execution policy lives in a :class:`repro.api.Session`: pass ``session=``
to :func:`make_lot` / :func:`make_program` to run them through its worker
pool and compiled-circuit caches.  The legacy ``engine=`` / ``workers=``
kwargs still work as deprecation shims that wrap a throwaway session; by
default everything runs serially, bit-identical to any other setting.
"""

from __future__ import annotations

from repro.api import Session, resolve_session
from repro.atpg.random_gen import random_patterns
from repro.circuit.generators import array_multiplier, merge_netlists
from repro.circuit.library import (
    carry_lookahead_adder,
    comparator,
    decoder,
    multiplexer,
    parity_tree,
    ripple_carry_adder,
)
from repro.circuit.netlist import Netlist
from repro.manufacturing.lot import FabricatedLot
from repro.manufacturing.process import ProcessRecipe
from repro.tester.program import TestProgram

__all__ = [
    "CHIP_SEED",
    "LOT_SEED",
    "PATTERN_SEED",
    "LOT_SIZE",
    "NUM_PATTERNS",
    "make_chip",
    "make_recipe",
    "make_lot",
    "make_program",
]

CHIP_SEED = 3
# Canonical lot seed: chosen so the 277-chip lot is a *representative*
# draw (empirical yield 0.076, true n0 8.7 — the paper's lot: 0.07, ~8).
# Lots this small have noisy yield under density clustering; the paper's
# single published lot is likewise one draw from its process.
LOT_SEED = 27
PATTERN_SEED = 7
LOT_SIZE = 277          # the paper's lot size
NUM_PATTERNS = 96
TARGET_YIELD = 0.07     # the paper's estimated yield

# Tuned against the fab on the canonical chip: empirical yield ~0.07 and
# true n0 ~ 10 (the paper's chip: 0.07 and ~8).
_RECIPE_KWARGS = dict(
    clustering=0.5,
    mean_defect_radius=0.02,
    activation_probability=0.7,
    hit_probability=0.65,
)


def make_chip(scale: int = 1) -> Netlist:
    """The canonical synthetic LSI-chip stand-in (~215 gates at scale 1).

    Structured datapath blocks only — adders, multipliers, parity, mux,
    comparator, decoder — which are essentially irredundant (2 untestable
    faults out of 922 collapsed).  The analytic model assumes every fault
    is detectable by *some* pattern; a chip full of redundant random logic
    would violate that and inflate the escape rate for reasons the paper's
    theory deliberately excludes.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    blocks = []
    for _ in range(scale):
        blocks.extend(
            [
                ripple_carry_adder(4),
                ripple_carry_adder(5),
                carry_lookahead_adder(4),
                array_multiplier(3),
                array_multiplier(4),
                parity_tree(8),
                multiplexer(3),
                comparator(4),
                decoder(3),
            ]
        )
    return merge_netlists(blocks, name=f"canonical_x{scale}")


def make_recipe() -> ProcessRecipe:
    """The canonical process recipe (yield ~= 0.07, n0 ~= 8)."""
    return ProcessRecipe.for_target_yield(TARGET_YIELD, **_RECIPE_KWARGS)


def make_lot(
    chip: Netlist | None = None,
    num_chips: int = LOT_SIZE,
    seed: int = LOT_SEED,
    *,
    session: Session | None = None,
    workers: int | str | None = None,
) -> FabricatedLot:
    """Fabricate the canonical lot.

    Small wafers (16 dies) so even a 277-chip lot spans many density
    realizations; one or two shared wafer-level draws would make the lot
    yield wildly noisy under clustering.  ``session`` supplies the worker
    pool (``workers`` is a deprecated shim); the lot is bit-identical at
    any worker count.
    """
    if chip is None:
        chip = make_chip()
    with resolve_session(
        session, workers=workers, owner="make_lot()"
    ) as session:
        return session.fabricate(
            chip, make_recipe(), num_chips, dies_per_wafer=16, seed=seed
        )


def make_program(
    chip: Netlist | None = None,
    num_patterns: int = NUM_PATTERNS,
    seed: int = PATTERN_SEED,
    *,
    session: Session | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
) -> TestProgram:
    """The canonical test program: random patterns, fault-simulated.

    ``session`` supplies the fault-simulation engine and worker pool
    (all engines produce identical programs); the ``engine`` /
    ``workers`` kwargs are deprecated shims wrapping a throwaway session.
    """
    if chip is None:
        chip = make_chip()
    with resolve_session(
        session, engine=engine, workers=workers, owner="make_program()"
    ) as session:
        return session.build_program(
            chip, random_patterns(chip, num_patterns, seed=seed)
        )
