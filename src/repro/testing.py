"""Reusable process/cluster harness for tests, docs, and smoke tools.

Three layers, each usable on its own:

* :func:`running_app` — run any in-process service object that follows
  the ``run()`` / ``wait_started()`` / ``request_shutdown()`` contract
  (:class:`~repro.server.LotServer`, :class:`~repro.gateway.Gateway`,
  :class:`~repro.router.Router`) on a daemon thread, yield it
  listening, and tear it down even when the body raises.  The
  per-package ``running_server`` / ``running_gateway`` /
  ``running_router`` helpers are thin wrappers over this.
* :class:`ServerProcess` / :func:`spawn_server` — spawn a real
  subprocess (``python -m repro.server ...`` by default), parse its
  one-line startup announcement for the bound address (so ``--port 0``
  ephemeral binds work), capture everything it prints for failure
  diagnostics, and expose ``kill()`` / ``terminate()`` / ``stop()``
  handles.  The spawned environment inherits ``os.environ`` — chaos
  schedules installed via :func:`repro.chaos.install` therefore reach
  the child through ``REPRO_CHAOS``.
* :func:`running_cluster` — N subprocess backends plus (optionally) an
  in-thread :class:`~repro.router.Router` federating them: the
  one-liner behind every multi-node test in this repo::

      from repro.testing import running_cluster

      with running_cluster(n_backends=3) as cluster:
          with cluster.client() as client:
              client.ping()
          cluster.kill_backend(0)       # SIGKILL, mid-flight
          cluster.restart_backend(0)    # same port, re-admitted
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from contextlib import ExitStack, contextmanager
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "Cluster",
    "ServerProcess",
    "running_app",
    "running_cluster",
    "spawn_server",
]

_SRC_DIR = str(Path(__file__).resolve().parents[1])


@contextmanager
def running_app(app, name: str, timeout: float = 60.0) -> Iterator:
    """Yield ``app`` listening on a daemon thread; stop it on exit.

    ``app`` is any object with the service-lifecycle trio ``run()``
    (blocking), ``wait_started(timeout)``, and ``request_shutdown()``.
    """
    thread = threading.Thread(target=app.run, name=name, daemon=True)
    thread.start()
    try:
        app.wait_started(timeout)
        yield app
    finally:
        app.request_shutdown()
        thread.join(timeout)
        if thread.is_alive():  # pragma: no cover - diagnostics
            raise RuntimeError(f"{name} thread did not stop in time")


class ServerProcess:
    """A spawned service subprocess with announce parsing and log capture.

    The child must print one line starting with ``announce`` once it is
    accepting connections (every ``repro-*`` CLI does); the remainder of
    that line is the bound address, exposed as :attr:`address`.  All
    stdout/stderr output is captured continuously — read :attr:`log`
    when something goes wrong.
    """

    def __init__(
        self,
        argv: Sequence[str],
        announce: str,
        env: dict[str, str] | None = None,
        startup_timeout: float = 60.0,
        name: str | None = None,
    ):
        self.argv = list(argv)
        self.name = name or self.argv[-1]
        self.address: str | None = None
        self._announce = announce
        self._lines: list[str] = []
        self._announced = threading.Event()
        self._proc = subprocess.Popen(
            self.argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            bufsize=1,
            env=env,
        )
        self._reader = threading.Thread(
            target=self._pump, name=f"{self.name}-log", daemon=True
        )
        self._reader.start()
        if not self._announced.wait(startup_timeout):
            self.stop()
            raise TimeoutError(
                f"{self.name} did not announce within {startup_timeout}s; "
                f"log so far:\n{self.log}"
            )
        if self.address is None:
            self.stop()
            raise RuntimeError(
                f"{self.name} exited before announcing; log:\n{self.log}"
            )

    def _pump(self) -> None:
        stream = self._proc.stdout
        assert stream is not None
        for line in stream:
            self._lines.append(line)
            if not self._announced.is_set() and line.startswith(self._announce):
                self.address = line[len(self._announce):].strip()
                self._announced.set()
        self._announced.set()  # EOF: unblock the startup waiter

    @property
    def log(self) -> str:
        """Everything the process has printed so far."""
        return "".join(self._lines)

    @property
    def pid(self) -> int:
        return self._proc.pid

    @property
    def alive(self) -> bool:
        return self._proc.poll() is None

    @property
    def returncode(self) -> int | None:
        return self._proc.returncode

    def kill(self) -> None:
        """SIGKILL — the unplanned-death end of the spectrum."""
        if self.alive:
            self._proc.kill()

    def terminate(self) -> None:
        """SIGTERM — the graceful-drain path."""
        if self.alive:
            self._proc.terminate()

    def send_signal(self, signum: int) -> None:
        if self.alive:
            self._proc.send_signal(signum)

    def wait(self, timeout: float = 30.0) -> int:
        returncode = self._proc.wait(timeout)
        self._reader.join(timeout)
        return returncode

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate, escalate to kill if the drain window passes."""
        if self.alive:
            self.terminate()
            try:
                self._proc.wait(timeout)
            except subprocess.TimeoutExpired:
                self.kill()
                self._proc.wait(timeout)
        self._reader.join(timeout)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        state = "alive" if self.alive else f"exited({self.returncode})"
        return f"ServerProcess({self.name}, {self.address}, {state})"


def spawn_server(
    *cli_args,
    module: str = "repro.server",
    announce: str = "repro-server listening on",
    env: dict[str, str] | None = None,
    startup_timeout: float = 60.0,
) -> ServerProcess:
    """Spawn ``python -m <module> <cli_args...>`` and wait for its announce.

    The child's ``PYTHONPATH`` is prefixed with this checkout's ``src``
    directory so the subprocess imports the same code under test.
    """
    argv = [sys.executable, "-m", module, *(str(arg) for arg in cli_args)]
    child_env = dict(os.environ if env is None else env)
    existing = child_env.get("PYTHONPATH")
    child_env["PYTHONPATH"] = (
        _SRC_DIR if not existing else _SRC_DIR + os.pathsep + existing
    )
    return ServerProcess(
        argv,
        announce=announce,
        env=child_env,
        startup_timeout=startup_timeout,
        name=module,
    )


class Cluster:
    """N subprocess backends behind an (optional) in-thread router.

    Connect to :attr:`address` — the router's endpoint when one is
    running, else the sole backend's.  Fault-injection handles:
    :meth:`kill_backend` (SIGKILL), :meth:`terminate_backend`
    (graceful), :meth:`restart_backend` (same port by default, so ring
    placement — and therefore backend cache warmth — is preserved).
    """

    def __init__(
        self,
        backends: list[ServerProcess],
        backend_args: Sequence[str],
        router=None,
    ):
        self.backends = backends
        self.router = router
        self._backend_args = list(backend_args)

    @property
    def address(self) -> str:
        if self.router is not None:
            return self.router.address
        if len(self.backends) != 1:
            raise RuntimeError(
                "a router-less cluster with several backends has no "
                "single address; use cluster.backend_addresses"
            )
        return self.backends[0].address

    @property
    def backend_addresses(self) -> list[str]:
        return [backend.address for backend in self.backends]

    def client(self, **client_kwargs):
        """A :class:`repro.server.Client` connected to :attr:`address`."""
        from repro.server.client import Client

        return Client(self.address, **client_kwargs)

    def kill_backend(self, index: int) -> None:
        self.backends[index].kill()

    def terminate_backend(self, index: int) -> None:
        self.backends[index].terminate()

    def restart_backend(
        self, index: int, same_port: bool = True, startup_timeout: float = 60.0
    ) -> ServerProcess:
        """Replace backend ``index`` with a fresh process.

        ``same_port=True`` rebinds the old address (the listener socket
        is ``SO_REUSEADDR``), so the ring mapping is untouched and the
        router simply re-admits the node; ``same_port=False`` binds an
        ephemeral port and swaps ring membership via the router's admin
        ops.
        """
        old = self.backends[index]
        old_address = old.address
        if old.alive:
            old.kill()
            old.wait()
        port = old_address.rsplit(":", 1)[1] if same_port else "0"
        replacement = spawn_server(
            "--port",
            port,
            "--backend-id",
            index,
            *self._backend_args,
            startup_timeout=startup_timeout,
        )
        self.backends[index] = replacement
        if self.router is not None:
            if not same_port and old_address != replacement.address:
                try:
                    self.router.remove_backend(old_address)
                except Exception:
                    pass  # already ejected/removed
            # add_backend is idempotent and immediately (re-)marks the
            # node up — no waiting on the next health probe.
            self.router.add_backend(replacement.address)
        return replacement

    def stop(self, timeout: float = 10.0) -> None:
        for backend in self.backends:
            backend.stop(timeout)


@contextmanager
def running_cluster(
    n_backends: int = 2,
    router: bool = True,
    workers: int = 1,
    server_args: Sequence[str] = (),
    router_kwargs: dict | None = None,
    timeout: float = 120.0,
) -> Iterator[Cluster]:
    """Yield a running :class:`Cluster` of ``n_backends`` lot servers.

    Each backend is a real subprocess (``python -m repro.server --port 0
    --workers <workers> --backend-id <i> <server_args...>``); with
    ``router=True`` an in-thread :class:`~repro.router.Router`
    federates them and ``cluster.address`` is the router's endpoint.
    Extra ``router_kwargs`` go to the :class:`Router` constructor.
    """
    if n_backends < 1:
        raise ValueError(f"n_backends must be >= 1, got {n_backends}")
    backend_args = ["--workers", str(workers), *(str(arg) for arg in server_args)]
    with ExitStack() as stack:
        backends: list[ServerProcess] = []
        for index in range(n_backends):
            process = spawn_server(
                "--port", 0, "--backend-id", index, *backend_args,
                startup_timeout=timeout,
            )
            stack.callback(process.stop)
            backends.append(process)
        cluster = Cluster(backends, backend_args)
        if router:
            from repro.router.router import Router

            cluster.router = stack.enter_context(
                running_app(
                    Router(
                        backends=[b.address for b in backends],
                        **(router_kwargs or {}),
                    ),
                    name="repro-router",
                    timeout=timeout,
                )
            )
        yield cluster
        # Stop backends before the ExitStack tears the router down so
        # shutdown never waits on the router's drain window.
        cluster.stop()
