"""Console entry point: ``repro-server`` (or ``python -m repro.server``).

Binds a :class:`~repro.server.server.LotServer` and serves until a
client sends ``shutdown`` or the process receives SIGINT/SIGTERM — both
of which drain gracefully: stop accepting, finish in-flight requests up
to ``--drain-timeout``, then exit 0 with a one-line summary.  On
startup it prints exactly one line::

    repro-server listening on <host>:<port>

(or ``unix:<path>``), which wrapper scripts parse to discover an
ephemeral ``--port 0`` binding — the server smoke test does exactly
that.
"""

from __future__ import annotations

import argparse

from repro.experiments.runner import _parse_workers
from repro.server.server import LotServer
from repro.simulator import ENGINES

__all__ = ["main"]


def _positive_int(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if number < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {number}")
    return number


def _positive_float(value: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}") from None
    if number <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {number}")
    return number


def main(argv: list[str] | None = None) -> int:
    """Parse CLI flags, run the server, return the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description=(
            "Multi-client lot-testing server: serves fabricate / "
            "build_program / test_lot / run_experiment requests over a "
            "shared compile-once session (see docs/server.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="TCP bind host (default: %(default)s)")
    parser.add_argument(
        "--port",
        type=int,
        default=7642,
        help="TCP port; 0 binds an ephemeral port (default: %(default)s)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="listen on a Unix-domain socket instead of TCP",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="batch",
        help="fault-simulation engine of the shared session (default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        help="session pool processes: an integer or 'auto' (default: %(default)s)",
    )
    parser.add_argument(
        "--max-contexts",
        type=_positive_int,
        default=None,
        help="LRU bound on resident compiled contexts (default: unbounded)",
    )
    parser.add_argument(
        "--max-bytes",
        type=_positive_int,
        default=None,
        help="LRU bound on resident context bytes (default: unbounded)",
    )
    parser.add_argument(
        "--max-handles",
        type=_positive_int,
        default=256,
        help="retained lot/program handles per kind (default: %(default)s)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "per-netlist backpressure high-water mark: requests past N "
            "pending answer 'overloaded' with a retry_after hint "
            "(default: unbounded)"
        ),
    )
    parser.add_argument(
        "--request-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request server deadline; a request past it answers "
            "'deadline-exceeded' (default: none)"
        ),
    )
    parser.add_argument(
        "--drain-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "graceful-shutdown window for in-flight requests "
            "(default: $REPRO_DRAIN_TIMEOUT or 10)"
        ),
    )
    parser.add_argument(
        "--dispatch-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "pool watchdog deadline against hung workers "
            "(default: $REPRO_DISPATCH_TIMEOUT or off)"
        ),
    )
    parser.add_argument(
        "--backend-id",
        type=int,
        default=None,
        metavar="N",
        help=(
            "identify this server as backend N of a repro-router "
            "federation (rides ping/stats; arms the router.backend "
            "chaos seam)"
        ),
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="log every request (op, frame format, payload bytes in/out)",
    )
    args = parser.parse_args(argv)
    if args.debug:
        import logging

        logging.basicConfig(
            level=logging.DEBUG,
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    server = LotServer(
        host=args.host,
        port=0 if args.socket else args.port,
        socket_path=args.socket,
        engine=args.engine,
        workers=args.workers,
        max_contexts=args.max_contexts,
        max_bytes=args.max_bytes,
        max_handles=args.max_handles,
        max_queue_depth=args.max_queue_depth,
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
        dispatch_timeout=args.dispatch_timeout,
        backend_id=args.backend_id,
    )
    try:
        # SIGINT/SIGTERM are handled inside the event loop (graceful
        # drain); the KeyboardInterrupt fallback only fires on platforms
        # where the loop could not register signal handlers.
        server.run(verbose=True)
    except KeyboardInterrupt:
        pass
    print(
        f"repro-server: drained {server.drained_requests} in-flight "
        f"request(s)",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
