"""Transport-agnostic serving plumbing shared by the front ends.

Both network front ends — the framed-TCP :class:`~repro.server.LotServer`
and the HTTP/JSON :class:`~repro.gateway.Gateway` — need the same four
pieces, independent of how bytes arrive:

:class:`RequestError`
    A handler error carrying a protocol error code (and an optional
    ``retry_after`` backoff hint for ``overloaded`` rejections).
:func:`param`
    Type-checked request-parameter extraction with the bool/int
    distinction JSON blurs.
:class:`HandleRegistry`
    Bounded FIFO registry of server-retained objects (lots, programs)
    addressed by opaque string handles.
:class:`ReplayCache`
    The idempotent-replay store keyed by ``(client id, request id)``
    that lets a reconnecting client resend a request whose first reply
    died on the wire without re-running pipeline work.
:class:`JobQueues`
    Per-key FIFO request queues with queued+in-flight accounting and
    immediate ``overloaded`` rejection past a high-water mark.  *How* a
    dequeued job runs is injected (``runner``): the TCP server drains
    every queue onto one shared-session thread, the gateway's
    :class:`~repro.gateway.SessionScheduler` fans keys out across a
    bounded fleet of sessions.
"""

from __future__ import annotations

import asyncio
from collections import Counter, OrderedDict
from typing import Any, Awaitable, Callable

from repro.server.protocol import ERR_BAD_REQUEST, ERR_OVERLOADED

__all__ = [
    "MISSING",
    "RequestError",
    "param",
    "HandleRegistry",
    "ReplayCache",
    "JobQueues",
]

MISSING = object()


class RequestError(Exception):
    """An error with a protocol code, raised by request handlers.

    ``retry_after`` (seconds) rides into the error payload when set —
    the backoff hint ``ERR_OVERLOADED`` replies carry.
    """

    def __init__(self, code: str, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


def param(params: dict, name: str, kinds, default=MISSING):
    """Fetch and type-check one request parameter."""
    value = params.get(name, MISSING)
    if value is MISSING:
        if default is MISSING:
            raise RequestError(ERR_BAD_REQUEST, f"missing parameter {name!r}")
        return default
    if kinds is not None:
        allowed = kinds if isinstance(kinds, tuple) else (kinds,)
        ok = isinstance(value, allowed)
        if isinstance(value, bool) and bool not in allowed:
            ok = False  # bool is an int subclass; reject it for int params
        if not ok:
            raise RequestError(
                ERR_BAD_REQUEST,
                f"parameter {name!r} has the wrong type ({type(value).__name__})",
            )
    return value


class HandleRegistry:
    """Bounded FIFO store of server-built objects behind string handles.

    Handles are ``"{prefix}-{n}"`` with a monotonically increasing
    counter (optionally shared between registries, so lot and program
    handles never collide even if a client mixes them up).  Past
    ``max_handles`` entries the oldest is dropped; an evicted handle
    answers ``unknown-handle`` and the client re-uploads.
    """

    def __init__(self, prefix: str, max_handles: int, counter: list[int] | None = None):
        if max_handles < 1:
            raise ValueError(f"max_handles must be >= 1, got {max_handles}")
        self._prefix = prefix
        self._max = max_handles
        # The counter is a one-cell list so several registries can share it.
        self._counter = counter if counter is not None else [0]
        self._entries: OrderedDict[str, Any] = OrderedDict()

    def add(self, obj: Any) -> str:
        self._counter[0] += 1
        handle = f"{self._prefix}-{self._counter[0]}"
        self._entries[handle] = obj
        while len(self._entries) > self._max:
            self._entries.popitem(last=False)
        return handle

    def get(self, handle: str) -> Any | None:
        return self._entries.get(handle)

    def __len__(self) -> int:
        return len(self._entries)


class ReplayCache:
    """Idempotent-replay store: ``(cid, rid) -> successful response``.

    Bounds are small on purpose — the cache only needs to cover the
    retry window of a reconnecting client: ``per_client`` responses per
    client id and ``clients`` client ids, both FIFO-evicted.
    """

    def __init__(self, per_client: int = 8, clients: int = 64):
        self._per_client = per_client
        self._clients = clients
        self._store: OrderedDict[str, OrderedDict[Any, Any]] = OrderedDict()
        self.hits = 0

    def lookup(self, cid: str, rid) -> Any | None:
        conn = self._store.get(cid)
        if conn is None:
            return None
        cached = conn.get(rid)
        if cached is not None:
            self._store.move_to_end(cid)
            self.hits += 1
        return cached

    def store(self, cid: str, rid, response: Any) -> None:
        conn = self._store.setdefault(cid, OrderedDict())
        conn[rid] = response
        while len(conn) > self._per_client:
            conn.popitem(last=False)
        self._store.move_to_end(cid)
        while len(self._store) > self._clients:
            self._store.popitem(last=False)


class JobQueues:
    """Per-key FIFO job queues with backpressure, draining onto ``runner``.

    ``runner(key, fn)`` is the injected execution policy: it is awaited
    once per dequeued job, exactly one at a time *per key* (each key has
    its own consumer task), and its result/exception resolves the
    submitter's future.  Fairness across keys is the runner's problem —
    the TCP server funnels every key onto one session thread's FIFO,
    the gateway scheduler routes keys to per-group session lanes.

    ``pending(key)`` counts queued **plus in-flight** jobs (a queue's
    ``qsize()`` is 0 while its consumer holds the one dequeued job, so
    qsize alone undercounts by one).  With ``max_queue_depth`` set, a
    submission finding ``pending(key)`` at the high-water mark is
    rejected immediately with ``ERR_OVERLOADED`` and a ``retry_after``
    hint scaled to the backlog.
    """

    def __init__(
        self,
        runner: Callable[[str, Callable[[], Any]], Awaitable[Any]],
        max_queue_depth: int | None = None,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        self._runner = runner
        self._max_queue_depth = max_queue_depth
        self._queues: dict[str, asyncio.Queue] = {}
        self._consumers: dict[str, asyncio.Task] = {}
        self._pending: Counter[str] = Counter()
        self.overload_rejections = 0

    # ------------------------------------------------------------- metrics

    def pending(self, key: str) -> int:
        return self._pending[key]

    def total_pending(self) -> int:
        return sum(self._pending.values())

    def pending_by_queue(self) -> dict[str, int]:
        return {key: count for key, count in self._pending.items() if count}

    def queue_depths(self) -> dict[str, int]:
        return {key: queue.qsize() for key, queue in self._queues.items()}

    # ----------------------------------------------------------- execution

    async def submit(self, key: str, fn: Callable[[], Any]) -> Any:
        """Enqueue ``fn`` on ``key``'s queue and await its result."""
        pending = self._pending[key]
        if self._max_queue_depth is not None and pending >= self._max_queue_depth:
            self.overload_rejections += 1
            raise RequestError(
                ERR_OVERLOADED,
                f"queue {key!r} is at its high-water mark "
                f"({pending} pending >= {self._max_queue_depth})",
                retry_after=round(0.05 * max(1, pending), 3),
            )
        queue = self._queues.get(key)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[key] = queue
            self._consumers[key] = asyncio.ensure_future(self._consume(key, queue))
        future = asyncio.get_running_loop().create_future()
        self._pending[key] += 1
        await queue.put((fn, future))
        return await future

    async def _consume(self, key: str, queue: asyncio.Queue) -> None:
        while True:
            fn, future = await queue.get()
            try:
                result = await self._runner(key, fn)
            except Exception as exc:
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)
            finally:
                self._pending[key] -= 1
                queue.task_done()

    async def aclose(self) -> None:
        """Cancel every consumer task (queued jobs never resolve)."""
        for task in self._consumers.values():
            task.cancel()
        for task in self._consumers.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._consumers.clear()
        self._queues.clear()
