"""Test/demo helper: run a :class:`LotServer` in a background thread.

The server's natural habitat is its own process (the ``repro-server``
CLI); for tests, docs snippets, and smoke checks it is handy to run one
inside the current process instead::

    from repro.server.testing import running_server

    with running_server(workers=1) as server:
        with Client(server.address) as client:
            client.ping()

The context manager waits until the server is listening (so
``server.address`` is valid), and on exit requests shutdown and joins
the thread — a clean teardown even if the body raised.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.server.server import LotServer
from repro.testing import running_app

__all__ = ["running_server"]


@contextmanager
def running_server(timeout: float = 60.0, **server_kwargs) -> Iterator[LotServer]:
    """Yield a listening :class:`LotServer` running in a daemon thread.

    ``server_kwargs`` are forwarded to :class:`LotServer` (engine,
    workers, max_contexts, ...); the default endpoint is an ephemeral
    TCP port on localhost — read ``server.address``.
    """
    with running_app(
        LotServer(**server_kwargs), name="repro-server", timeout=timeout
    ) as server:
        yield server
