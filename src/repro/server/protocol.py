"""Wire protocol of the lot-testing server: framing, payloads, errors.

The protocol is deliberately small (see ``docs/server.md`` for the
normative spec):

**Framing.**  Every message is one *frame*: a 4-byte big-endian length
prefix followed by the frame body.  Two body formats share the stream:

* **JSON frames** (protocol 1, always accepted): the prefix MSB is
  clear, the body is UTF-8 JSON, and domain objects travel as
  base64-encoded pickles inside JSON strings (:func:`pack_obj` /
  :func:`unpack_obj`).
* **Binary frames** (protocol 2): the prefix MSB is *set* (the low 31
  bits hold the body length), and the body is a 4-byte header length, a
  JSON header, then a raw buffer section.  Domain objects marked with
  :class:`WireObj` are replaced in the header by ``{"__wire__": k}``
  stubs; a top-level ``"_wire"`` key lists, per object, its pickle-5
  header length and out-of-band buffer lengths, and the buffer section
  concatenates those bytes verbatim.  Arrays therefore cross the socket
  as raw buffers — no base64 inflation, no per-element object pickling —
  and decode as views of the received frame.

A peer announces binary support via ``ping`` (``protocol >= 2``); the
server answers every request in the format the request arrived in, so
old JSON-only clients keep working unchanged.  Frames flow in both
directions over a plain TCP or Unix-domain stream; a client may
pipeline requests, and the server answers each request with exactly one
response frame carrying the same ``id``.

**Envelope.**  Requests are ``{"id": int, "op": str, "params": {...}}``.
Responses are ``{"id": int, "ok": true, "result": {...}}`` on success or
``{"id": int, "ok": false, "error": {"code": str, "message": str}}`` on
failure; error codes are the ``ERR_*`` constants below.

**Payloads.**  Scalar parameters travel as plain JSON.  Domain objects —
netlists, recipes, pattern lists, lots, programs, results — travel as
pickles (base64 in JSON frames, raw pickle-5 in binary frames): the
same bytes the in-process runtime already ships to its pool workers,
which is what keeps server-mediated results bit-identical to direct
:class:`repro.api.Session` calls.  Whole lots additionally have an
array form (:class:`LotArrays`): chip ids, CSR offsets, defect and
``(site, polarity)`` arrays plus a netlist fingerprint, rebuilt
losslessly on the receiver against its registered netlist — the SoA
wire format end-to-end.  Pickle is a code-execution vector, so the
server trusts its clients by design — bind it to localhost or a
protected test-floor network, never the open internet.

**Size limits.**  :data:`MAX_FRAME_BYTES` bounds the *decoded payload*,
not the frame: ``pack_obj``/``unpack_obj`` enforce it on raw pickled
bytes (base64 inflates the frame itself by ~33%, so JSON frames may
legitimately run up to a third past the limit — the frame bound allows
for exactly that), and binary frames enforce it on the body directly.

**Identity.**  Netlists are registered once and addressed by
*fingerprint* (:func:`netlist_fingerprint`, a SHA-256 over the exact
gate structure), so any number of clients uploading the same circuit
share one server-side canonical netlist — and therefore one compiled
context.  Lots and programs built by the server are addressed by
server-assigned handles (``lot-N`` / ``prog-N``) so follow-up requests
reference them without re-uploading.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import socket
import struct
from dataclasses import dataclass
from typing import Any

from repro.circuit.netlist import Netlist

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ConnectionLost",
    "FrameDecodeError",
    "ProtocolError",
    "RemoteError",
    "WireObj",
    "FrameInfo",
    "LotArrays",
    "encode_frame",
    "read_frame",
    "read_frame_info",
    "recv_frame",
    "recv_frame_info",
    "send_frame",
    "pack_obj",
    "unpack_obj",
    "pack_lot",
    "lot_from_arrays",
    "netlist_fingerprint",
]

PROTOCOL_VERSION = 2

# Decoded-payload bound: one payload must fit a pickled lot/program
# comfortably; half a GiB is far beyond any realistic payload and bounds
# a hostile length prefix.  Enforced on *raw pickled bytes* (pack_obj /
# unpack_obj) and on binary frame bodies — see _frame_limit() for the
# base64-aware bound applied to JSON frames.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_HEADER = struct.Struct(">I")

# Binary (protocol 2) frames set the MSB of the length prefix; the low
# 31 bits carry the body length.  A JSON frame can never collide: its
# length is bounded well below 2**31 by _frame_limit().
_BINARY_FLAG = 0x80000000


def _frame_limit() -> int:
    """Largest acceptable *frame* length for a JSON frame.

    ``MAX_FRAME_BYTES`` bounds decoded payload bytes, but base64 inflates
    pickled objects by ~33% on the wire, so a JSON frame carrying a
    limit-sized payload legitimately exceeds ``MAX_FRAME_BYTES``.  Allow
    exactly that inflation (plus envelope slack) — computed dynamically
    so tests can shrink ``MAX_FRAME_BYTES`` and exercise the boundary.
    """
    return MAX_FRAME_BYTES + MAX_FRAME_BYTES // 3 + 4096

# Error codes — the closed vocabulary of the "error.code" field.
ERR_BAD_REQUEST = "bad-request"  # malformed envelope or parameters
ERR_UNKNOWN_OP = "unknown-op"  # op name not in the dispatch table
ERR_UNKNOWN_NETLIST = "unknown-netlist"  # netlist_id never registered
ERR_UNKNOWN_HANDLE = "unknown-handle"  # lot/program handle expired or bogus
ERR_USER = "user-error"  # pipeline rejected the inputs (ValueError etc.)
ERR_WORKER_CRASH = "worker-crash"  # pool worker crash recovery exhausted
ERR_SHUTTING_DOWN = "shutting-down"  # request arrived after shutdown began
ERR_OVERLOADED = "overloaded"  # per-netlist queue past its high-water mark
ERR_DEADLINE = "deadline-exceeded"  # request outlived the server deadline
ERR_BAD_FRAME = "bad-frame"  # frame read fully but undecodable
ERR_POISON_SHARD = "poison-shard"  # a shard payload reproducibly kills workers
ERR_UNAVAILABLE = "unavailable"  # no live backend can take the request (router)
ERR_INTERNAL = "internal"  # unexpected server-side failure


class ProtocolError(Exception):
    """A malformed frame or envelope (either direction)."""


class FrameDecodeError(ProtocolError):
    """A frame was read *in full* but its body is undecodable.

    The distinction from a bare :class:`ProtocolError` is whether the
    byte stream is still synchronized: a truncated read or hostile
    length prefix leaves the receiver mid-frame (the connection must be
    dropped), while a fully-read-but-garbage body leaves the next
    frame boundary intact — so the server can answer ``ERR_BAD_FRAME``
    and keep serving the connection.
    """


class ConnectionLost(OSError):
    """The client's connection died or desynchronized mid-request.

    Raised by :class:`repro.server.Client` whenever a request cannot
    complete on the current socket — the peer reset it, a read timed
    out mid-frame (the stream is desynchronized: leftover reply bytes
    would corrupt the *next* request), or the reply was undecodable.
    The socket is already marked dead when this propagates; with
    retries enabled the client reconnects and replays transparently,
    so callers only see this once the retry budget is spent.
    """


class RemoteError(Exception):
    """A server-reported failure, surfaced client-side.

    ``code`` is one of the ``ERR_*`` constants; ``message`` is the
    human-readable server explanation.  ``retry_after`` is the server's
    backoff hint in seconds (``ERR_OVERLOADED`` replies carry one).
    """

    def __init__(self, code: str, message: str, retry_after: float | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.retry_after = retry_after


# ------------------------------------------------------------------ framing


class WireObj:
    """Marks an envelope value as a domain object for wire transport.

    ``encode_frame`` replaces each :class:`WireObj` with its wire form:
    a base64 pickle string in JSON frames, or a pickle-5 header plus raw
    out-of-band buffers in binary frames.  Receivers of binary frames
    get the decoded object back in place; receivers of JSON frames get
    the base64 string (and run it through :func:`unpack_obj` as before).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


@dataclass(frozen=True)
class FrameInfo:
    """One received frame plus its transport facts.

    ``binary`` records which format the peer used (so a server can reply
    in kind) and ``nbytes`` the full frame size including the length
    prefix (so per-request payload bytes can be logged without
    re-serializing anything).
    """

    message: dict
    binary: bool
    nbytes: int


def _resolve_wire(value: Any) -> Any:
    """Walk an envelope, replacing each WireObj with ``pack_obj`` output."""
    if isinstance(value, WireObj):
        return pack_obj(value.value)
    if isinstance(value, dict):
        return {k: _resolve_wire(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_resolve_wire(v) for v in value]
    return value


def _stub_wire(value: Any, groups: list) -> Any:
    """Walk an envelope, pulling each WireObj into the binary section.

    Appends ``[pickle_header, [raw, ...]]`` to ``groups`` per object and
    leaves an ``{"__wire__": index}`` stub in the JSON header.
    """
    if isinstance(value, WireObj):
        picklebuffers: list[pickle.PickleBuffer] = []
        header = pickle.dumps(
            value.value, protocol=5, buffer_callback=picklebuffers.append
        )
        raws = []
        for pb in picklebuffers:
            raws.append(pb.raw())
        groups.append([header, raws])
        return {"__wire__": len(groups) - 1}
    if isinstance(value, dict):
        return {k: _stub_wire(v, groups) for k, v in value.items()}
    if isinstance(value, list):
        return [_stub_wire(v, groups) for v in value]
    return value


def _substitute_stubs(value: Any, objects: list) -> Any:
    """Walk a decoded binary header, swapping stubs for decoded objects."""
    if isinstance(value, dict):
        if len(value) == 1 and "__wire__" in value:
            index = value["__wire__"]
            if isinstance(index, int) and 0 <= index < len(objects):
                return objects[index]
            raise ProtocolError(f"binary frame references unknown wire object {index!r}")
        return {k: _substitute_stubs(v, objects) for k, v in value.items()}
    if isinstance(value, list):
        return [_substitute_stubs(v, objects) for v in value]
    return value


def encode_frame(message: dict, binary: bool = False) -> bytes:
    """Serialize one envelope to its length-prefixed wire form.

    With ``binary=False`` (protocol 1, the default) any :class:`WireObj`
    values collapse to base64 pickle strings inside plain JSON.  With
    ``binary=True`` they travel as raw pickle-5 buffers after the JSON
    header, and the length prefix carries the binary flag bit.
    """
    if not binary:
        body = json.dumps(_resolve_wire(message), separators=(",", ":")).encode("utf-8")
        if len(body) > _frame_limit():
            raise ProtocolError(
                f"frame of {len(body)} bytes exceeds the {_frame_limit()}-byte limit"
            )
        return _HEADER.pack(len(body)) + body

    groups: list = []
    header_obj = _stub_wire(message, groups)
    wire_index = [
        [len(header), [raw.nbytes for raw in raws]] for header, raws in groups
    ]
    header_obj["_wire"] = wire_index
    header = json.dumps(header_obj, separators=(",", ":")).encode("utf-8")
    parts: list = [_HEADER.pack(len(header)), header]
    body_len = _HEADER.size + len(header)
    for pickle_header, raws in groups:
        parts.append(pickle_header)
        body_len += len(pickle_header)
        for raw in raws:
            parts.append(raw)
            body_len += raw.nbytes
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {body_len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    frame = _HEADER.pack(_BINARY_FLAG | body_len) + b"".join(parts)
    for _, raws in groups:
        for raw in raws:
            raw.release()
    return frame


def _decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def _decode_binary_body(body: bytes) -> dict:
    """Decode a protocol-2 body: JSON header + concatenated buffers."""
    view = memoryview(body)
    if len(body) < _HEADER.size:
        raise ProtocolError("binary frame too short for its header length")
    (header_len,) = _HEADER.unpack_from(body, 0)
    offset = _HEADER.size
    if offset + header_len > len(body):
        raise ProtocolError("binary frame header overruns the body")
    message = _decode_body(bytes(view[offset : offset + header_len]))
    offset += header_len
    wire_index = message.pop("_wire", [])
    if not isinstance(wire_index, list):
        raise ProtocolError("binary frame _wire index must be a list")
    objects: list = []
    for entry in wire_index:
        try:
            pickle_len, buf_lens = entry
            pickle_len = int(pickle_len)
            buf_lens = [int(n) for n in buf_lens]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed _wire entry: {entry!r}") from exc
        if offset + pickle_len > len(body):
            raise ProtocolError("binary frame object overruns the body")
        pickle_header = view[offset : offset + pickle_len]
        offset += pickle_len
        bufs = []
        for nbytes in buf_lens:
            if offset + nbytes > len(body):
                raise ProtocolError("binary frame buffer overruns the body")
            bufs.append(view[offset : offset + nbytes])
            offset += nbytes
        try:
            objects.append(pickle.loads(pickle_header, buffers=bufs))
        except Exception as exc:
            raise ProtocolError(f"undecodable object payload: {exc}") from exc
    return _substitute_stubs(message, objects)


def _decode_full_body(body: bytes, binary: bool) -> dict:
    """Decode a fully-received frame body; failures are *recoverable*.

    By this point the reader consumed exactly the advertised body, so
    the stream is still frame-synchronized whatever the body contains —
    every failure here (truncated inner header, header_len overrunning
    the body, garbage ``__wire__`` stub, non-JSON bytes, a payload whose
    unpickling explodes) is reported as :class:`FrameDecodeError` so a
    server can answer ``ERR_BAD_FRAME`` instead of dropping the client.
    """
    try:
        return _decode_binary_body(body) if binary else _decode_body(body)
    except FrameDecodeError:
        raise
    except ProtocolError as exc:
        raise FrameDecodeError(str(exc)) from exc
    except Exception as exc:  # defensive: a hostile pickle can raise anything
        raise FrameDecodeError(f"undecodable frame body: {exc}") from exc


def _check_length(length: int) -> tuple[bool, int]:
    """Validate a raw length prefix; returns ``(binary, body_length)``."""
    binary = bool(length & _BINARY_FLAG)
    body_len = length & ~_BINARY_FLAG
    limit = MAX_FRAME_BYTES if binary else _frame_limit()
    if body_len > limit:
        raise ProtocolError(
            f"frame of {body_len} bytes exceeds the {limit}-byte limit"
        )
    return binary, body_len


async def read_frame_info(reader) -> FrameInfo | None:
    """Async side: read one frame, or ``None`` on a clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    binary, body_len = _check_length(length)
    try:
        body = await reader.readexactly(body_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    message = _decode_full_body(body, binary)
    return FrameInfo(message, binary, _HEADER.size + body_len)


async def read_frame(reader) -> dict | None:
    """Async side: read one envelope, or ``None`` on a clean EOF."""
    info = await read_frame_info(reader)
    return None if info is None else info.message


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame_info(sock: socket.socket) -> FrameInfo | None:
    """Sync side: read one frame, or ``None`` on a clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    binary, body_len = _check_length(length)
    body = _recv_exactly(sock, body_len)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    message = _decode_full_body(body, binary)
    return FrameInfo(message, binary, _HEADER.size + body_len)


def recv_frame(sock: socket.socket) -> dict | None:
    """Sync side: read one envelope, or ``None`` on a clean EOF."""
    info = recv_frame_info(sock)
    return None if info is None else info.message


def send_frame(sock: socket.socket, message: dict, binary: bool = False) -> None:
    """Sync side: write one envelope."""
    sock.sendall(encode_frame(message, binary=binary))


# ----------------------------------------------------------------- payloads


def pack_obj(obj: Any) -> str:
    """Encode a domain object for a JSON field (base64 pickle).

    The :data:`MAX_FRAME_BYTES` limit is enforced here on the *raw
    pickled bytes* — before base64 inflates them by ~33% — so the limit
    means the same number of payload bytes on both frame formats.
    """
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(raw)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return base64.b64encode(raw).decode("ascii")


def unpack_obj(data: str) -> Any:
    """Decode a :func:`pack_obj` payload.  Trusts the peer (see module doc)."""
    try:
        raw = base64.b64decode(data.encode("ascii"))
    except Exception as exc:
        raise ProtocolError(f"undecodable object payload: {exc}") from exc
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(raw)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        return pickle.loads(raw)
    except Exception as exc:
        raise ProtocolError(f"undecodable object payload: {exc}") from exc


# ---------------------------------------------------------------- lot arrays


@dataclass(frozen=True)
class LotArrays:
    """A fabricated lot in SoA wire form.

    ``payload`` is the same array bundle the fabrication pipeline ships
    between pool workers (chip ids, CSR offsets, defect coordinates and
    ``(site, polarity)`` fault arrays); ``fingerprint`` names the
    netlist it was drawn against, so the receiver rebuilds chips on its
    *own* registered copy of the circuit instead of unpickling a second
    netlist object graph off the wire.
    """

    fingerprint: str
    chip_area: float
    recipe: Any
    payload: Any


def pack_lot(netlist: Netlist, lot: Any) -> LotArrays | None:
    """Convert a lot to SoA wire form, or ``None`` if any chip can't be.

    All-or-nothing on purpose: a mixed encoding would make receiver-side
    chip identity depend on which chips happened to be array-backed.
    """
    from repro.manufacturing.lot import pack_lot_chips

    payload = pack_lot_chips(netlist, lot.chips)
    if payload is None:
        return None
    return LotArrays(
        fingerprint=netlist_fingerprint(netlist),
        chip_area=lot.recipe.chip_area,
        recipe=lot.recipe,
        payload=payload,
    )


def lot_from_arrays(netlist: Netlist, arrays: LotArrays) -> Any:
    """Rebuild a :class:`FabricatedLot` from its SoA wire form.

    The lot-level count SoA comes straight from the payload's CSR
    offsets, so the rebuilt lot's statistics never materialize per-chip
    fault objects.
    """
    import numpy as np

    from repro.manufacturing.lot import FabricatedLot, unpack_lot_chips

    payload = arrays.payload
    chips = unpack_lot_chips(netlist, arrays.chip_area, payload)
    return FabricatedLot._from_soa(
        arrays.recipe,
        tuple(chips),
        np.diff(payload.hit_offsets).astype(np.int64),
        np.diff(payload.defect_offsets).astype(np.int64),
    )


# ----------------------------------------------------------------- identity


def netlist_fingerprint(netlist: Netlist) -> str:
    """A stable structural identity for a netlist, hex SHA-256.

    Two :class:`~repro.circuit.netlist.Netlist` objects that describe
    the same circuit — same name, same gates with the same types and
    input connections in the same declaration order, same primary
    inputs/outputs — fingerprint identically, no matter which process
    or client built them.  This is the key the server's shared compiled
    caches are shared *on*: every client uploading the same circuit maps
    to one canonical server-side netlist, so it compiles exactly once.
    """
    hasher = hashlib.sha256()
    hasher.update(netlist.name.encode("utf-8"))
    for section in (netlist.inputs, netlist.outputs):
        hasher.update(b"\x00")
        for name in section:
            hasher.update(name.encode("utf-8") + b"\x1f")
    hasher.update(b"\x00")
    for signal in netlist.signals:
        gate = netlist.gate(signal)
        hasher.update(gate.name.encode("utf-8") + b"\x1f")
        hasher.update(gate.gate_type.name.encode("utf-8") + b"\x1f")
        for source in gate.inputs:
            hasher.update(source.encode("utf-8") + b"\x1f")
        hasher.update(b"\x00")
    return hasher.hexdigest()
