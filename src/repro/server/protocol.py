"""Wire protocol of the lot-testing server: framing, payloads, errors.

The protocol is deliberately small (see ``docs/server.md`` for the
normative spec):

**Framing.**  Every message is one *frame*: a 4-byte big-endian unsigned
length prefix followed by that many bytes of UTF-8 JSON.  Frames flow in
both directions over a plain TCP or Unix-domain stream; a client may
pipeline requests, and the server answers each request with exactly one
response frame carrying the same ``id``.

**Envelope.**  Requests are ``{"id": int, "op": str, "params": {...}}``.
Responses are ``{"id": int, "ok": true, "result": {...}}`` on success or
``{"id": int, "ok": false, "error": {"code": str, "message": str}}`` on
failure; error codes are the ``ERR_*`` constants below.

**Payloads.**  Scalar parameters travel as plain JSON.  Domain objects —
netlists, recipes, pattern lists, lots, programs, results — travel as
base64-encoded pickles inside JSON strings (:func:`pack_obj` /
:func:`unpack_obj`): the same bytes the in-process runtime already ships
to its pool workers, which is what keeps server-mediated results
bit-identical to direct :class:`repro.api.Session` calls.  Pickle is a
code-execution vector, so the server trusts its clients by design — bind
it to localhost or a protected test-floor network, never the open
internet.

**Identity.**  Netlists are registered once and addressed by
*fingerprint* (:func:`netlist_fingerprint`, a SHA-256 over the exact
gate structure), so any number of clients uploading the same circuit
share one server-side canonical netlist — and therefore one compiled
context.  Lots and programs built by the server are addressed by
server-assigned handles (``lot-N`` / ``prog-N``) so follow-up requests
reference them without re-uploading.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import socket
import struct
from typing import Any

from repro.circuit.netlist import Netlist

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RemoteError",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "pack_obj",
    "unpack_obj",
    "netlist_fingerprint",
]

PROTOCOL_VERSION = 1

# One frame must fit a pickled lot/program comfortably; half a GiB is
# far beyond any realistic payload and bounds a hostile length prefix.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_HEADER = struct.Struct(">I")

# Error codes — the closed vocabulary of the "error.code" field.
ERR_BAD_REQUEST = "bad-request"  # malformed envelope or parameters
ERR_UNKNOWN_OP = "unknown-op"  # op name not in the dispatch table
ERR_UNKNOWN_NETLIST = "unknown-netlist"  # netlist_id never registered
ERR_UNKNOWN_HANDLE = "unknown-handle"  # lot/program handle expired or bogus
ERR_USER = "user-error"  # pipeline rejected the inputs (ValueError etc.)
ERR_WORKER_CRASH = "worker-crash"  # pool worker crash recovery exhausted
ERR_SHUTTING_DOWN = "shutting-down"  # request arrived after shutdown began
ERR_INTERNAL = "internal"  # unexpected server-side failure


class ProtocolError(Exception):
    """A malformed frame or envelope (either direction)."""


class RemoteError(Exception):
    """A server-reported failure, surfaced client-side.

    ``code`` is one of the ``ERR_*`` constants; ``message`` is the
    human-readable server explanation.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


# ------------------------------------------------------------------ framing


def encode_frame(message: dict) -> bytes:
    """Serialize one envelope to its length-prefixed wire form."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )


async def read_frame(reader) -> dict | None:
    """Async side: read one envelope, or ``None`` on a clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Sync side: read one envelope, or ``None`` on a clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_body(body)


def send_frame(sock: socket.socket, message: dict) -> None:
    """Sync side: write one envelope."""
    sock.sendall(encode_frame(message))


# ----------------------------------------------------------------- payloads


def pack_obj(obj: Any) -> str:
    """Encode a domain object for a JSON field (base64 pickle)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_obj(data: str) -> Any:
    """Decode a :func:`pack_obj` payload.  Trusts the peer (see module doc)."""
    try:
        return pickle.loads(base64.b64decode(data.encode("ascii")))
    except Exception as exc:
        raise ProtocolError(f"undecodable object payload: {exc}") from exc


# ----------------------------------------------------------------- identity


def netlist_fingerprint(netlist: Netlist) -> str:
    """A stable structural identity for a netlist, hex SHA-256.

    Two :class:`~repro.circuit.netlist.Netlist` objects that describe
    the same circuit — same name, same gates with the same types and
    input connections in the same declaration order, same primary
    inputs/outputs — fingerprint identically, no matter which process
    or client built them.  This is the key the server's shared compiled
    caches are shared *on*: every client uploading the same circuit maps
    to one canonical server-side netlist, so it compiles exactly once.
    """
    hasher = hashlib.sha256()
    hasher.update(netlist.name.encode("utf-8"))
    for section in (netlist.inputs, netlist.outputs):
        hasher.update(b"\x00")
        for name in section:
            hasher.update(name.encode("utf-8") + b"\x1f")
    hasher.update(b"\x00")
    for signal in netlist.signals:
        gate = netlist.gate(signal)
        hasher.update(gate.name.encode("utf-8") + b"\x1f")
        hasher.update(gate.gate_type.name.encode("utf-8") + b"\x1f")
        for source in gate.inputs:
            hasher.update(source.encode("utf-8") + b"\x1f")
        hasher.update(b"\x00")
    return hasher.hexdigest()
