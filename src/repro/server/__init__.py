"""Multi-client lot-testing server and its wire protocol.

The network face of the repo's service direction: a
:class:`~repro.server.server.LotServer` (asyncio, TCP or Unix sockets,
length-prefixed JSON frames) multiplexes many client connections onto
one shared :class:`repro.api.Session`, so every client shares the
per-netlist compiled caches, the persistent process pool, and the
``max_contexts`` / ``max_bytes`` LRU bounding them.  The matching
synchronous :class:`~repro.server.client.Client` mirrors the session
surface, so moving an experiment onto a server is a one-line change.

Start a server from the CLI (installed as ``repro-server``)::

    repro-server --port 7642 --workers auto --max-contexts 64

and talk to it::

    from repro.server import Client

    with Client("127.0.0.1:7642") as client:
        report = client.run_experiment("table1")

Results are bit-identical to direct in-process ``Session`` calls; see
``docs/server.md`` for the protocol spec, error codes, and eviction
policy.
"""

from repro.server.client import Client, parse_address
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ConnectionLost,
    FrameDecodeError,
    ProtocolError,
    RemoteError,
    netlist_fingerprint,
)
from repro.server.server import LotServer

__all__ = [
    "Client",
    "ConnectionLost",
    "FrameDecodeError",
    "LotServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "netlist_fingerprint",
    "parse_address",
]
