"""Synchronous client for the lot-testing server: :class:`Client`.

The client mirrors the :class:`repro.api.Session` surface —
``fabricate`` / ``build_program`` / ``test`` / ``run_experiment`` — so
moving an experiment onto a remote server is a one-line change::

    from repro.server import Client

    with Client("127.0.0.1:7642") as client:
        lot = client.fabricate(chip, recipe, num_chips=277, seed=27)
        program = client.build_program(chip, patterns)
        result = client.test(lot, program)      # bit-identical to Session

Netlists are registered once per client (keyed by structural
fingerprint, so every client sharing a circuit shares the server's
compiled caches), and objects the server built — lots, programs — are
remembered by their server handle: passing them back to :meth:`test`
sends the small handle, not the pickled object.  Objects the client
built locally are uploaded transparently instead.

Server-reported failures raise
:class:`~repro.server.protocol.RemoteError` with the protocol error
code; transport problems raise ``OSError`` /
:class:`~repro.server.protocol.ProtocolError`.
"""

from __future__ import annotations

import socket
from typing import Any, Mapping, Sequence

from repro.circuit.netlist import Netlist
from repro.manufacturing.lot import FabricatedLot
from repro.manufacturing.process import ProcessRecipe
from repro.manufacturing.wafer import FabricatedChip
from repro.server.protocol import (
    LotArrays,
    ProtocolError,
    RemoteError,
    WireObj,
    lot_from_arrays,
    netlist_fingerprint,
    pack_lot,
    pack_obj,
    recv_frame,
    send_frame,
    unpack_obj,
)
from repro.tester.program import TestProgram
from repro.tester.results import LotTestResult

__all__ = ["Client", "parse_address"]


def parse_address(address: str) -> tuple[str, Any]:
    """Parse a server address into ``("tcp", (host, port))`` or ``("unix", path)``.

    Accepted forms: ``"host:port"`` (TCP) and ``"unix:/path/to.sock"``
    (Unix-domain socket).
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("empty unix socket path")
        return ("unix", path)
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address must be 'host:port' or 'unix:/path', got {address!r}"
        )
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise ValueError(f"invalid port in address {address!r}") from None


class Client:
    """A synchronous connection to one :class:`~repro.server.LotServer`.

    Parameters
    ----------
    address:
        ``"host:port"`` or ``"unix:/path"`` (see :func:`parse_address`).
    timeout:
        Socket timeout in seconds for connect and each response
        (pipeline requests can be slow — fabricating a big lot *is* the
        request — so the default is generous).

    Clients are context managers; they are not thread-safe (use one
    client per thread — the server multiplexes them).
    """

    def __init__(self, address: str, timeout: float = 600.0):
        kind, target = parse_address(address)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(target)
        else:
            self._sock = socket.create_connection(target, timeout=timeout)
        self.address = address
        self._next_id = 0
        self._closed = False
        # Local-object -> server-identity maps.  Values pin the objects
        # so the id() keys stay unambiguous for the client's lifetime.
        self._netlist_ids: dict[int, tuple[Netlist, str]] = {}
        self._netlists_by_fid: dict[str, Netlist] = {}
        self._handles: dict[int, tuple[Any, str]] = {}
        # Handshake: a protocol-2 server gets binary frames (raw array
        # payloads); anything older falls back to base64-in-JSON.
        self._binary = False
        self._binary = self.ping().get("protocol", 1) >= 2

    # ----------------------------------------------------------- lifecycle

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        finally:
            self._netlist_ids.clear()
            self._handles.clear()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- request

    def request(self, op: str, **params) -> dict:
        """Send one request and block for its response (low-level API)."""
        if self._closed:
            raise RuntimeError("client is closed")
        self._next_id += 1
        rid = self._next_id
        send_frame(
            self._sock,
            {"id": rid, "op": op, "params": params},
            binary=self._binary,
        )
        response = recv_frame(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        if response.get("id") != rid:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request id {rid}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(
                error.get("code", "internal"), error.get("message", "unknown error")
            )
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    def _pack(self, obj: Any) -> Any:
        """An object parameter in this connection's wire format."""
        return WireObj(obj) if self._binary else pack_obj(obj)

    @staticmethod
    def _unpack(value: Any) -> Any:
        """A result object in either wire format (str = base64 pickle)."""
        return unpack_obj(value) if isinstance(value, str) else value

    # ------------------------------------------------------------ pipeline

    def ping(self) -> dict:
        """Round-trip liveness check; returns the server's banner."""
        return self.request("ping")

    def register(self, netlist: Netlist) -> str:
        """Ensure ``netlist`` is registered server-side; return its id.

        Idempotent and cached per client — later pipeline calls on the
        same object send only the id.
        """
        cached = self._netlist_ids.get(id(netlist))
        if cached is not None and cached[0] is netlist:
            return cached[1]
        result = self.request("register_netlist", netlist=self._pack(netlist))
        netlist_id = result["netlist_id"]
        assert netlist_id == netlist_fingerprint(netlist)
        self._netlist_ids[id(netlist)] = (netlist, netlist_id)
        self._netlists_by_fid[netlist_id] = netlist
        return netlist_id

    def _remember(self, obj: Any, handle: str) -> None:
        self._handles[id(obj)] = (obj, handle)

    def _handle_for(self, obj: Any) -> str | None:
        cached = self._handles.get(id(obj))
        if cached is not None and cached[0] is obj:
            return cached[1]
        return None

    def fabricate(
        self,
        netlist: Netlist,
        recipe: ProcessRecipe,
        num_chips: int,
        dies_per_wafer: int = 100,
        seed=None,
    ) -> FabricatedLot:
        """Fabricate a lot on the server; bit-identical to ``Session.fabricate``."""
        result = self.request(
            "fabricate",
            netlist_id=self.register(netlist),
            recipe=self._pack(recipe),
            num_chips=num_chips,
            dies_per_wafer=dies_per_wafer,
            seed=seed,
        )
        lot = self._unpack(result["lot"])
        if isinstance(lot, LotArrays):
            # The server shipped arrays; rebuild against our own netlist
            # object so the chips share its cached layout and universe.
            lot = lot_from_arrays(
                self._netlists_by_fid.get(lot.fingerprint, netlist), lot
            )
        self._remember(lot, result["lot_id"])
        return lot

    def build_program(
        self,
        netlist: Netlist,
        patterns: Sequence[Mapping[str, int]],
        collapse: bool = True,
    ) -> TestProgram:
        """Build a test program on the server; bit-identical to ``Session``."""
        result = self.request(
            "build_program",
            netlist_id=self.register(netlist),
            patterns=self._pack([dict(p) for p in patterns]),
            collapse=collapse,
        )
        program = self._unpack(result["program"])
        self._remember(program, result["program_id"])
        return program

    def test(
        self,
        lot: FabricatedLot | Sequence[FabricatedChip],
        program: TestProgram,
    ) -> LotTestResult:
        """First-fail test a lot against ``program`` on the server.

        Server-built lots and programs are referenced by handle (no
        re-upload); locally built ones are pickled up transparently.
        """
        params: dict[str, Any] = {}
        program_handle = self._handle_for(program)
        if program_handle is not None:
            params["program_id"] = program_handle
        else:
            params["program"] = self._pack(program)
        lot_handle = self._handle_for(lot)
        if lot_handle is not None:
            params["lot_id"] = lot_handle
        else:
            chips = lot if isinstance(lot, FabricatedLot) else tuple(lot)
            upload: Any = None
            if self._binary and isinstance(chips, FabricatedLot):
                # Whole lots go up as SoA arrays keyed on the program's
                # netlist (the server resolves the program — registering
                # its netlist if uploaded — before the chips).
                upload = pack_lot(program.netlist, chips)
            params["chips"] = self._pack(upload if upload is not None else chips)
        result = self.request("test_lot", **params)
        return self._unpack(result["result"])

    def run_experiment(self, name: str) -> str:
        """Run one named paper experiment on the server; returns the report."""
        return self.request("run_experiment", name=name)["report"]

    def stats(self) -> dict:
        """Server, session, and pool-worker observability counters."""
        return self.request("stats")

    def shutdown_server(self) -> None:
        """Ask the server to shut down cleanly (the connection then closes)."""
        self.request("shutdown")
