"""Synchronous client for the lot-testing server: :class:`Client`.

The client mirrors the :class:`repro.api.Session` surface —
``fabricate`` / ``build_program`` / ``test`` / ``run_experiment`` — so
moving an experiment onto a remote server is a one-line change::

    from repro.server import Client

    with Client("127.0.0.1:7642") as client:
        lot = client.fabricate(chip, recipe, num_chips=277, seed=27)
        program = client.build_program(chip, patterns)
        result = client.test(lot, program)      # bit-identical to Session

Netlists are registered once per client (keyed by structural
fingerprint, so every client sharing a circuit shares the server's
compiled caches), and objects the server built — lots, programs — are
remembered by their server handle: passing them back to :meth:`test`
sends the small handle, not the pickled object.  Objects the client
built locally are uploaded transparently instead.

Failure handling
----------------

The client treats the connection as disposable and the *request* as the
durable unit:

* Every request carries a client id (``cid``) plus a request id that is
  allocated **once** per logical call — a retry resends the same pair,
  so the server's idempotent replay cache can answer a request whose
  first reply died on the wire without re-running the pipeline work.
* Any transport failure — reset, broken pipe, a reply that never
  decodes, or a ``socket.timeout`` **mid-frame** (after which leftover
  reply bytes would corrupt the next request: the socket is
  desynchronized, not slow) — marks the connection dead and raises the
  typed :class:`~repro.server.protocol.ConnectionLost`.  With
  ``reconnect=True`` (default) the client transparently reconnects with
  exponential backoff + jitter, re-handshakes, and replays the request;
  callers see ``ConnectionLost`` only once the retry budget is spent.
* ``ERR_OVERLOADED`` replies are retried after the server's
  ``retry_after`` hint (jittered); every other server error raises
  :class:`~repro.server.protocol.RemoteError` immediately.
* After a *server restart*, cached netlist ids and handles are stale;
  pipeline calls catch ``unknown-netlist`` / ``unknown-handle``, drop
  the caches, re-register / re-upload from the local objects, and retry
  once — so a bounced server is invisible to callers.

Everything the resilience layer does is visible in
:attr:`Client.counters` (``retries``, ``reconnects``, ``timeouts``,
``overload_rejections``, ``connection_losses``).
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from typing import Any, Callable, Mapping, Sequence

from repro import chaos
from repro.circuit.netlist import Netlist
from repro.manufacturing.lot import FabricatedLot
from repro.manufacturing.process import ProcessRecipe
from repro.manufacturing.wafer import FabricatedChip
from repro.server.protocol import (
    ERR_OVERLOADED,
    ERR_UNKNOWN_HANDLE,
    ERR_UNKNOWN_NETLIST,
    ConnectionLost,
    LotArrays,
    ProtocolError,
    RemoteError,
    WireObj,
    encode_frame,
    lot_from_arrays,
    netlist_fingerprint,
    pack_lot,
    pack_obj,
    recv_frame,
    unpack_obj,
)
from repro.tester.program import TestProgram
from repro.tester.results import LotTestResult

__all__ = ["Client", "parse_address"]


def parse_address(address: str) -> tuple[str, Any]:
    """Parse a server address into ``("tcp", (host, port))`` or ``("unix", path)``.

    Accepted forms: ``"host:port"`` (TCP) and ``"unix:/path/to.sock"``
    (Unix-domain socket).
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("empty unix socket path")
        return ("unix", path)
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address must be 'host:port' or 'unix:/path', got {address!r}"
        )
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise ValueError(f"invalid port in address {address!r}") from None


class Client:
    """A synchronous connection to one :class:`~repro.server.LotServer`.

    Parameters
    ----------
    address:
        ``"host:port"`` or ``"unix:/path"`` (see :func:`parse_address`).
        A comma-separated list (``"host:port,host:port"``) names
        failover endpoints — typically several ``repro-router``
        front ends over one federation: the client connects to the
        first that answers and rotates to the next on every reconnect
        attempt, so one dead front end costs a retry, not the run.
    timeout:
        Socket timeout in seconds for connect and each response
        (pipeline requests can be slow — fabricating a big lot *is* the
        request — so the default is generous).
    retries:
        How many times one logical request is retried after a
        connection loss or an ``overloaded`` rejection before the error
        propagates.  ``0`` disables retries.
    backoff, backoff_max:
        Exponential reconnect/retry backoff: the first retry waits
        ~``backoff`` seconds, doubling per attempt up to
        ``backoff_max``, with ±50% deterministic jitter (seeded by the
        client id) so a herd of clients doesn't reconnect in lockstep.
    reconnect:
        Reconnect-and-replay on connection loss (default).  ``False``
        turns any transport failure into an immediate
        :class:`~repro.server.protocol.ConnectionLost`.

    Clients are context managers; they are not thread-safe (use one
    client per thread — the server multiplexes them).
    """

    def __init__(
        self,
        address: str,
        timeout: float = 600.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        reconnect: bool = True,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.address = address
        self._addresses = [
            part.strip() for part in address.split(",") if part.strip()
        ]
        if not self._addresses:
            raise ValueError("address must name at least one endpoint")
        for endpoint in self._addresses:
            parse_address(endpoint)  # validate the whole list up front
        self._address_index = 0
        self._timeout = timeout
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._backoff_max = float(backoff_max)
        self._reconnect = bool(reconnect)
        # The idempotency key: (cid, request id) names one logical
        # request across however many sockets it takes to deliver it.
        self._cid = uuid.uuid4().hex
        self._rng = random.Random(self._cid)
        self.counters = {
            "retries": 0,
            "reconnects": 0,
            "timeouts": 0,
            "overload_rejections": 0,
            "connection_losses": 0,
        }
        self._sock: socket.socket | None = None
        self._next_id = 0
        self._closed = False
        # Local-object -> server-identity maps.  Values pin the objects
        # so the id() keys stay unambiguous for the client's lifetime.
        self._netlist_ids: dict[int, tuple[Netlist, str]] = {}
        self._netlists_by_fid: dict[str, Netlist] = {}
        self._handles: dict[int, tuple[Any, str]] = {}
        self._binary = False
        last: Exception | None = None
        for _ in range(len(self._addresses)):
            try:
                self._connect()
                break
            except (ConnectionLost, OSError) as exc:
                if len(self._addresses) == 1:
                    raise
                last = exc
                self._drop_socket()
                self._address_index = (
                    self._address_index + 1
                ) % len(self._addresses)
        else:
            raise ConnectionLost(
                f"could not connect to any of {self._addresses}: {last}"
            )

    # ----------------------------------------------------------- lifecycle

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._drop_socket()
        finally:
            self._netlist_ids.clear()
            self._handles.clear()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- transport

    def _drop_socket(self) -> None:
        """Mark the connection dead; the next request must reconnect."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _connect(self) -> None:
        """Open a fresh socket and run the format handshake."""
        kind, target = parse_address(self._addresses[self._address_index])
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(target)
        else:
            sock = socket.create_connection(target, timeout=self._timeout)
        self._sock = sock
        # Handshake: a protocol-2 server gets binary frames (raw array
        # payloads); anything older falls back to base64-in-JSON.
        self._binary = False
        self._next_id += 1
        pong = self._request_once(self._next_id, "ping", {})
        self._binary = pong.get("protocol", 1) >= 2

    def _sleep_backoff(self, attempt: int, hint: float | None = None) -> None:
        """Wait before a retry: server hint or exponential, ±50% jitter."""
        if hint is not None:
            delay = hint
        else:
            delay = self._backoff * (2 ** max(0, attempt - 1))
        delay = min(delay, self._backoff_max)
        time.sleep(delay * (0.5 + self._rng.random()))

    def _reestablish(self) -> None:
        """Reconnect with exponential backoff; raises when exhausted.

        A successful reconnect forgets the cached netlist ids (one cheap
        idempotent ``register_netlist`` per circuit re-proves them on
        whatever server is now answering); handles are kept — if the
        server really restarted, the pipeline helpers fall back to
        re-upload on ``unknown-handle``.
        """
        last: Exception | None = None
        for attempt in range(self._retries + 1):
            if attempt:
                self._sleep_backoff(attempt)
            try:
                self._connect()
            except (ConnectionLost, OSError) as exc:
                last = exc
                self._drop_socket()
                # Rotate through the failover endpoints: the next
                # attempt tries the next front end in the list.
                self._address_index = (
                    self._address_index + 1
                ) % len(self._addresses)
                continue
            self.counters["reconnects"] += 1
            self._netlist_ids.clear()
            return
        raise ConnectionLost(
            f"could not reconnect to {self.address} after "
            f"{self._retries + 1} attempts: {last}"
        )

    def _request_once(self, rid: int, op: str, params: dict) -> dict:
        """One request/response round trip on the current socket.

        Every transport failure — including a mid-frame timeout, after
        which the stream is desynchronized (the next bytes belong to
        the stale reply, not to any future request) — drops the socket
        and raises :class:`ConnectionLost`; this socket is never reused.
        """
        sock = self._sock
        assert sock is not None
        payload = encode_frame(
            {"id": rid, "cid": self._cid, "op": op, "params": params},
            binary=self._binary,
        )
        try:
            fault = chaos.fire("client.send")
            if fault is not None and fault.action == "reset":
                # Injected: ship a partial frame, then cut the line.
                cut = (
                    int(fault.value)
                    if fault.value
                    else max(1, len(payload) // 2)
                )
                sock.sendall(payload[:cut])
                raise ConnectionLost("injected connection reset mid-request")
            sock.sendall(payload)
            response = recv_frame(sock)
        except ConnectionLost:
            self._drop_socket()
            raise
        except socket.timeout as exc:
            self.counters["timeouts"] += 1
            self._drop_socket()
            raise ConnectionLost(
                f"no reply within {self._timeout:g}s; dropping the "
                f"desynchronized connection"
            ) from exc
        except ProtocolError as exc:
            self._drop_socket()
            raise ConnectionLost(f"undecodable reply: {exc}") from exc
        except OSError as exc:
            self._drop_socket()
            raise ConnectionLost(str(exc)) from exc
        if response is None:
            self._drop_socket()
            raise ConnectionLost("server closed the connection")
        if response.get("id") != rid:
            self._drop_socket()
            raise ConnectionLost(
                f"response id {response.get('id')!r} does not match request "
                f"id {rid}; dropping the desynchronized connection"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(
                error.get("code", "internal"),
                error.get("message", "unknown error"),
                retry_after=error.get("retry_after"),
            )
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    # ------------------------------------------------------------- request

    def request(self, op: str, **params) -> dict:
        """Send one request and block for its response (low-level API).

        The request id is allocated once; connection losses reconnect
        and *replay* it (the server's idempotent cache recognizes the
        retry), and ``overloaded`` rejections back off per the server's
        ``retry_after`` hint — up to the ``retries`` budget.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        self._next_id += 1
        rid = self._next_id
        attempts = 0
        while True:
            if self._sock is None:
                self._reestablish()
            try:
                return self._request_once(rid, op, params)
            except ConnectionLost:
                self.counters["connection_losses"] += 1
                attempts += 1
                if not self._reconnect or attempts > self._retries:
                    raise
                self.counters["retries"] += 1
            except RemoteError as exc:
                if exc.code != ERR_OVERLOADED:
                    raise
                self.counters["overload_rejections"] += 1
                attempts += 1
                if attempts > self._retries:
                    raise
                self.counters["retries"] += 1
                self._sleep_backoff(attempts, hint=exc.retry_after)

    def _pipeline_request(self, op: str, build_params: Callable[[], dict]) -> dict:
        """A pipeline request that survives server-side state loss.

        ``build_params`` is re-invoked on retry so the request is
        rebuilt against *current* caches: if the server answers
        ``unknown-netlist`` / ``unknown-handle`` (it restarted, or FIFO-
        evicted our handles), the cached identities are dropped and the
        same logical call re-registers / re-uploads from the local
        objects — one extra round trip, identical results.
        """
        try:
            return self.request(op, **build_params())
        except RemoteError as exc:
            if exc.code not in (ERR_UNKNOWN_NETLIST, ERR_UNKNOWN_HANDLE):
                raise
            self._netlist_ids.clear()
            self._handles.clear()
            return self.request(op, **build_params())

    def _pack(self, obj: Any) -> Any:
        """An object parameter in this connection's wire format."""
        return WireObj(obj) if self._binary else pack_obj(obj)

    @staticmethod
    def _unpack(value: Any) -> Any:
        """A result object in either wire format (str = base64 pickle)."""
        return unpack_obj(value) if isinstance(value, str) else value

    # ------------------------------------------------------------ pipeline

    def ping(self) -> dict:
        """Round-trip liveness check; returns the server's banner."""
        return self.request("ping")

    def register(self, netlist: Netlist) -> str:
        """Ensure ``netlist`` is registered server-side; return its id.

        Idempotent and cached per client — later pipeline calls on the
        same object send only the id.
        """
        cached = self._netlist_ids.get(id(netlist))
        if cached is not None and cached[0] is netlist:
            return cached[1]
        result = self.request("register_netlist", netlist=self._pack(netlist))
        netlist_id = result["netlist_id"]
        assert netlist_id == netlist_fingerprint(netlist)
        self._netlist_ids[id(netlist)] = (netlist, netlist_id)
        self._netlists_by_fid[netlist_id] = netlist
        return netlist_id

    def _remember(self, obj: Any, handle: str) -> None:
        self._handles[id(obj)] = (obj, handle)

    def _handle_for(self, obj: Any) -> str | None:
        cached = self._handles.get(id(obj))
        if cached is not None and cached[0] is obj:
            return cached[1]
        return None

    def fabricate(
        self,
        netlist: Netlist,
        recipe: ProcessRecipe,
        num_chips: int,
        dies_per_wafer: int = 100,
        seed=None,
    ) -> FabricatedLot:
        """Fabricate a lot on the server; bit-identical to ``Session.fabricate``."""
        result = self._pipeline_request(
            "fabricate",
            lambda: {
                "netlist_id": self.register(netlist),
                "recipe": self._pack(recipe),
                "num_chips": num_chips,
                "dies_per_wafer": dies_per_wafer,
                "seed": seed,
            },
        )
        lot = self._unpack(result["lot"])
        if isinstance(lot, LotArrays):
            # The server shipped arrays; rebuild against our own netlist
            # object so the chips share its cached layout and universe.
            lot = lot_from_arrays(
                self._netlists_by_fid.get(lot.fingerprint, netlist), lot
            )
        self._remember(lot, result["lot_id"])
        return lot

    def build_program(
        self,
        netlist: Netlist,
        patterns: Sequence[Mapping[str, int]],
        collapse: bool = True,
    ) -> TestProgram:
        """Build a test program on the server; bit-identical to ``Session``."""
        result = self._pipeline_request(
            "build_program",
            lambda: {
                "netlist_id": self.register(netlist),
                "patterns": self._pack([dict(p) for p in patterns]),
                "collapse": collapse,
            },
        )
        program = self._unpack(result["program"])
        self._remember(program, result["program_id"])
        return program

    def test(
        self,
        lot: FabricatedLot | Sequence[FabricatedChip],
        program: TestProgram,
    ) -> LotTestResult:
        """First-fail test a lot against ``program`` on the server.

        Server-built lots and programs are referenced by handle (no
        re-upload); locally built ones — and any whose handle the
        server no longer recognizes — are pickled up transparently.
        """

        def build_params() -> dict:
            params: dict[str, Any] = {}
            program_handle = self._handle_for(program)
            if program_handle is not None:
                params["program_id"] = program_handle
            else:
                params["program"] = self._pack(program)
            lot_handle = self._handle_for(lot)
            if lot_handle is not None:
                params["lot_id"] = lot_handle
            else:
                chips = lot if isinstance(lot, FabricatedLot) else tuple(lot)
                upload: Any = None
                if self._binary and isinstance(chips, FabricatedLot):
                    # Whole lots go up as SoA arrays keyed on the
                    # program's netlist (the server resolves the program
                    # — registering its netlist if uploaded — before
                    # the chips).
                    upload = pack_lot(program.netlist, chips)
                params["chips"] = self._pack(
                    upload if upload is not None else chips
                )
            return params

        result = self._pipeline_request("test_lot", build_params)
        return self._unpack(result["result"])

    def run_experiment(self, name: str) -> str:
        """Run one named paper experiment on the server; returns the report."""
        return self.request("run_experiment", name=name)["report"]

    def stats(self) -> dict:
        """Server, session, and pool-worker observability counters."""
        return self.request("stats")

    def shutdown_server(self) -> None:
        """Ask the server to shut down cleanly (the connection then closes)."""
        self.request("shutdown")
