"""The multi-client lot-testing server: :class:`LotServer`.

An asyncio front end that multiplexes many concurrent client
connections onto one shared :class:`repro.api.Session` — the same
shape as a test-floor DAQ service: many operators stream requests at
the one process that owns the hardware-facing hot path.

Execution model
---------------

* The event loop owns all sockets and never runs pipeline work.
* Requests that touch the pipeline (``fabricate``, ``build_program``,
  ``test_lot``, ``run_experiment``) are enqueued **per netlist** (FIFO
  order per netlist, round-robin fairness across netlists via queue
  consumers) and executed one at a time on a dedicated worker thread
  against the shared session.  Parallelism lives *below* that thread,
  in the session's process pool — so two clients hammering different
  netlists contend for the pool, not for locks.
* Because the session is shared, its compile-once caches are shared:
  any number of clients uploading the same netlist (same
  :func:`~repro.server.protocol.netlist_fingerprint`) compile its
  engine exactly once and ship its contexts to the pool once.  The
  session's ``max_contexts`` / ``max_bytes`` LRU bounds what stays
  resident, and a crashed pool worker is healed transparently by the
  executor's re-install/retry — in-flight requests from other clients
  never observe it.
* Results are **bit-identical** to direct ``Session`` calls: the server
  moves the same pickled bytes the in-process runtime ships to its pool
  workers; it never re-computes or re-rounds anything.

Responses on one connection are returned in request order; independent
connections interleave freely.  See ``docs/server.md`` for the protocol
spec and :mod:`repro.server.client` for the matching sync client.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import sys
import threading
import traceback
from collections import Counter, OrderedDict
from typing import Any, Awaitable, Callable

from repro.api import Session
from repro.circuit.netlist import Netlist
from repro.manufacturing.lot import FabricatedLot
from repro.manufacturing.process import ProcessRecipe
from repro.runtime import WorkerCrashError
from repro.server.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_SHUTTING_DOWN,
    ERR_UNKNOWN_HANDLE,
    ERR_UNKNOWN_NETLIST,
    ERR_UNKNOWN_OP,
    ERR_USER,
    ERR_WORKER_CRASH,
    PROTOCOL_VERSION,
    LotArrays,
    ProtocolError,
    WireObj,
    encode_frame,
    lot_from_arrays,
    netlist_fingerprint,
    pack_lot,
    pack_obj,
    read_frame_info,
    unpack_obj,
)
from repro.tester.program import TestProgram

__all__ = ["LotServer"]

_log = logging.getLogger("repro.server")

# Queue key for requests that are not tied to a client netlist (the
# named paper experiments build their own circuits internally).
_EXPERIMENT_QUEUE = "__experiments__"

_MISSING = object()


class _RequestError(Exception):
    """An error with a protocol code, raised by request handlers."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def _param(params: dict, name: str, kinds, default=_MISSING):
    """Fetch and type-check one request parameter."""
    value = params.get(name, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise _RequestError(ERR_BAD_REQUEST, f"missing parameter {name!r}")
        return default
    if kinds is not None:
        allowed = kinds if isinstance(kinds, tuple) else (kinds,)
        ok = isinstance(value, allowed)
        if isinstance(value, bool) and bool not in allowed:
            ok = False  # bool is an int subclass; reject it for int params
        if not ok:
            raise _RequestError(
                ERR_BAD_REQUEST,
                f"parameter {name!r} has the wrong type ({type(value).__name__})",
            )
    return value


class LotServer:
    """Serve lot-testing requests from many clients over one session.

    Parameters
    ----------
    host, port:
        TCP endpoint; ``port=0`` binds an ephemeral port (read
        :attr:`address` after startup).  Mutually exclusive with
        ``socket_path``.
    socket_path:
        Unix-domain socket path to listen on instead of TCP.
    engine, workers, max_contexts, max_bytes:
        Forwarded to the shared :class:`repro.api.Session` — the
        server's execution policy and cache budget.
    max_handles:
        Upper bound on server-retained lot and program handles (each
        kind separately, FIFO-evicted).  Evicted handles answer
        ``unknown-handle``; clients can always re-upload.

    Run it blocking with :meth:`run` (the ``repro-server`` CLI does), or
    in a thread via :func:`repro.server.testing.running_server`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        engine: str = "batch",
        workers: int | str = 1,
        max_contexts: int | None = None,
        max_bytes: int | None = None,
        max_handles: int = 256,
    ):
        if socket_path is not None and port:
            raise ValueError("pass either port or socket_path, not both")
        if max_handles < 1:
            raise ValueError(f"max_handles must be >= 1, got {max_handles}")
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._max_handles = max_handles
        self._session = Session(
            engine=engine,
            workers=workers,
            max_contexts=max_contexts,
            max_bytes=max_bytes,
        )
        self._netlists: dict[str, Netlist] = {}
        self._lots: OrderedDict[str, FabricatedLot] = OrderedDict()
        # handle -> (netlist fingerprint, program); the fingerprint is
        # stored so test_lot-by-handle never re-hashes the netlist.
        self._programs: OrderedDict[str, tuple[str, TestProgram]] = OrderedDict()
        self._handle_counter = 0
        self._queues: dict[str, asyncio.Queue] = {}
        self._consumers: dict[str, asyncio.Task] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._counters: Counter[str] = Counter()
        self._connections_open = 0
        self._connections_total = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._stopping = False
        self._started = threading.Event()
        self._finished = threading.Event()
        self.address: str | None = None
        # The one thread that touches the shared session; its FIFO queue
        # is what serializes pipeline work across netlist queues.
        self._exec: Any = None

    # ----------------------------------------------------------- lifecycle

    def run(self, verbose: bool = False) -> None:
        """Bind, announce (``verbose``), and serve until shutdown (blocking)."""
        try:
            asyncio.run(self._main(verbose))
        finally:
            self._finished.set()
            self._started.set()  # unblock waiters even on startup failure

    def wait_started(self, timeout: float = 30.0) -> None:
        """Block until the server is listening (for run-in-a-thread users)."""
        if not self._started.wait(timeout):
            raise TimeoutError("server did not start listening in time")
        if self.address is None:
            raise RuntimeError("server failed during startup")

    def request_shutdown(self) -> None:
        """Ask the server to stop, from any thread (idempotent)."""
        loop, stop = self._loop, self._stop_event
        if loop is None or stop is None:
            self._stopping = True
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass  # loop already closed — the server is already down

    async def _main(self, verbose: bool) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._stopping:  # shutdown requested before startup
            self._stop_event.set()
        self._exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-server-exec"
        )
        if self._socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self._socket_path
            )
            self.address = f"unix:{self._socket_path}"
        else:
            server = await asyncio.start_server(
                self._handle_connection, host=self._host, port=self._port
            )
            bound = server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        if verbose:
            print(f"repro-server listening on {self.address}", flush=True)
        self._started.set()
        try:
            await self._stop_event.wait()
            self._stopping = True
        finally:
            # Stop accepting, then cancel live connection handlers
            # explicitly: since Python 3.12.1 ``wait_closed`` blocks
            # until every handler coroutine finishes, so an idle client
            # that never disconnects would otherwise hang shutdown.
            server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            try:
                await server.wait_closed()
            except Exception:
                pass
            for task in self._consumers.values():
                task.cancel()
            for task in self._consumers.values():
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            # Let an in-flight pipeline call finish, then release the pool.
            self._exec.shutdown(wait=True)
            self._session.close()
            if self._socket_path is not None:
                import os

                try:
                    os.unlink(self._socket_path)
                except OSError:
                    pass

    # --------------------------------------------------------- connections

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections_open += 1
        self._connections_total += 1
        try:
            while True:
                try:
                    frame = await read_frame_info(reader)
                except ProtocolError:
                    break  # peer sent garbage; drop the connection
                if frame is None:
                    break
                # Answer in the format the request arrived in, so one
                # server serves protocol-1 and protocol-2 clients alike.
                response, stop_after = await self._handle_request(
                    frame.message, frame.binary
                )
                reply = encode_frame(response, binary=frame.binary)
                if _log.isEnabledFor(logging.DEBUG):
                    _log.debug(
                        "op=%s id=%s format=%s bytes_in=%d bytes_out=%d",
                        frame.message.get("op"),
                        frame.message.get("id"),
                        "binary" if frame.binary else "json",
                        frame.nbytes,
                        len(reply),
                    )
                writer.write(reply)
                await writer.drain()
                if stop_after:
                    self._stop_event.set()  # type: ignore[union-attr]
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(
        self, request: dict, binary: bool = False
    ) -> tuple[dict, bool]:
        rid = request.get("id")
        if not isinstance(rid, int) or isinstance(rid, bool):
            return self._error_response(None, ERR_BAD_REQUEST, "request id must be an integer"), False
        op = request.get("op")
        params = request.get("params", {})
        try:
            if not isinstance(op, str):
                raise _RequestError(ERR_BAD_REQUEST, "request op must be a string")
            if not isinstance(params, dict):
                raise _RequestError(ERR_BAD_REQUEST, "request params must be an object")
            if self._stopping:
                raise _RequestError(ERR_SHUTTING_DOWN, "server is shutting down")
            handler = self._OPS.get(op)
            if handler is None:
                raise _RequestError(
                    ERR_UNKNOWN_OP,
                    f"unknown op {op!r}; choose from {sorted(self._OPS)}",
                )
            self._counters[op] += 1
            result = await handler(self, params, binary)
            return {"id": rid, "ok": True, "result": result}, op == "shutdown"
        except _RequestError as exc:
            return self._error_response(rid, exc.code, str(exc)), False
        except WorkerCrashError as exc:
            return self._error_response(
                rid,
                ERR_WORKER_CRASH,
                f"pool worker crash recovery exhausted: {exc} "
                f"(token={exc.token!r}, shard_index={exc.shard_index!r})",
            ), False
        except ProtocolError as exc:
            return self._error_response(rid, ERR_BAD_REQUEST, str(exc)), False
        except (ValueError, KeyError, IndexError, TypeError) as exc:
            return self._error_response(rid, ERR_USER, f"{type(exc).__name__}: {exc}"), False
        except Exception as exc:  # pragma: no cover - defensive
            traceback.print_exc(file=sys.stderr)
            return self._error_response(rid, ERR_INTERNAL, f"{type(exc).__name__}: {exc}"), False

    @staticmethod
    def _error_response(rid, code: str, message: str) -> dict:
        return {"id": rid, "ok": False, "error": {"code": code, "message": message}}

    # ------------------------------------------------------ queued execution

    async def _run_queued(self, key: str, fn: Callable[[], Any]) -> Any:
        """Enqueue ``fn`` on the per-netlist queue and await its result."""
        queue = self._queues.get(key)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[key] = queue
            self._consumers[key] = asyncio.ensure_future(self._consume(queue))
        future = self._loop.create_future()  # type: ignore[union-attr]
        await queue.put((fn, future))
        return await future

    async def _consume(self, queue: asyncio.Queue) -> None:
        """Drain one netlist queue, one request at a time, FIFO.

        All consumers submit to the same single-thread executor, whose
        FIFO run queue interleaves ready requests from different
        netlists fairly while keeping the shared session single-threaded.
        """
        while True:
            fn, future = await queue.get()
            try:
                result = await self._loop.run_in_executor(self._exec, fn)  # type: ignore[union-attr]
            except Exception as exc:
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)
            finally:
                queue.task_done()

    def _new_handle(self, prefix: str) -> str:
        self._handle_counter += 1
        return f"{prefix}-{self._handle_counter}"

    def _retain(self, registry: OrderedDict, handle: str, obj: Any) -> None:
        registry[handle] = obj
        while len(registry) > self._max_handles:
            registry.popitem(last=False)

    def _netlist_for(self, params: dict) -> tuple[str, Netlist]:
        netlist_id = _param(params, "netlist_id", str)
        netlist = self._netlists.get(netlist_id)
        if netlist is None:
            raise _RequestError(
                ERR_UNKNOWN_NETLIST,
                f"netlist {netlist_id!r} is not registered; call register_netlist first",
            )
        return netlist_id, netlist

    @staticmethod
    def _obj_param(params: dict, name: str, default=_MISSING):
        """Fetch a domain-object parameter in either wire format.

        JSON-frame clients send base64 pickle strings; binary-frame
        clients send the object itself (already decoded from the frame's
        buffer section).  Both are accepted on every request, regardless
        of which format the *envelope* used.
        """
        value = _param(params, name, None, default=default)
        if isinstance(value, str):
            return unpack_obj(value)
        return value

    # ------------------------------------------------------------------ ops

    async def _op_ping(self, params: dict, binary: bool) -> dict:
        return {
            "pong": True,
            "server": "repro-server",
            "protocol": PROTOCOL_VERSION,
        }

    async def _op_register_netlist(self, params: dict, binary: bool) -> dict:
        netlist = self._obj_param(params, "netlist")
        if not isinstance(netlist, Netlist):
            raise _RequestError(
                ERR_BAD_REQUEST,
                f"netlist payload must be a Netlist, got {type(netlist).__name__}",
            )
        fingerprint = netlist_fingerprint(netlist)
        known = fingerprint in self._netlists
        if not known:
            self._netlists[fingerprint] = netlist
        return {"netlist_id": fingerprint, "known": known}

    async def _op_fabricate(self, params: dict, binary: bool) -> dict:
        netlist_id, netlist = self._netlist_for(params)
        recipe = self._obj_param(params, "recipe")
        if not isinstance(recipe, ProcessRecipe):
            raise _RequestError(
                ERR_BAD_REQUEST,
                f"recipe payload must be a ProcessRecipe, got {type(recipe).__name__}",
            )
        num_chips = _param(params, "num_chips", int)
        dies_per_wafer = _param(params, "dies_per_wafer", int, default=100)
        seed = _param(params, "seed", (int, str, type(None)), default=None)
        return_lot = _param(params, "return_lot", bool, default=True)

        def job() -> dict:
            lot = self._session.fabricate(
                netlist,
                recipe,
                num_chips,
                dies_per_wafer=dies_per_wafer,
                seed=seed,
            )
            handle = self._new_handle("lot")
            self._retain(self._lots, handle, lot)
            result = {
                "lot_id": handle,
                "num_chips": len(lot),
                "empirical_yield": lot.empirical_yield(),
            }
            if return_lot:
                if binary:
                    # SoA wire form when every chip encodes; the pickled
                    # object fallback still rides the binary frame.
                    result["lot"] = WireObj(pack_lot(netlist, lot) or lot)
                else:
                    result["lot"] = pack_obj(lot)
            return result

        return await self._run_queued(netlist_id, job)

    async def _op_build_program(self, params: dict, binary: bool) -> dict:
        netlist_id, netlist = self._netlist_for(params)
        patterns = self._obj_param(params, "patterns")
        collapse = _param(params, "collapse", bool, default=True)
        return_program = _param(params, "return_program", bool, default=True)

        def job() -> dict:
            program = self._session.build_program(netlist, patterns, collapse=collapse)
            handle = self._new_handle("prog")
            self._retain(self._programs, handle, (netlist_id, program))
            result = {
                "program_id": handle,
                "num_patterns": len(program),
                "final_coverage": program.final_coverage,
            }
            if return_program:
                result["program"] = (
                    WireObj(program) if binary else pack_obj(program)
                )
            return result

        return await self._run_queued(netlist_id, job)

    def _resolve_program(self, params: dict) -> tuple[str, TestProgram]:
        """The request's program and its netlist queue key.

        Accepts a server handle (``program_id``) or an uploaded pickled
        program; uploads are canonicalized onto the server's registered
        netlist (by fingerprint) so they share the compiled caches, and
        register their netlist implicitly when it is new.
        """
        if "program_id" in params:
            handle = _param(params, "program_id", str)
            entry = self._programs.get(handle)
            if entry is None:
                raise _RequestError(
                    ERR_UNKNOWN_HANDLE, f"unknown or expired program handle {handle!r}"
                )
            return entry
        program = self._obj_param(params, "program")
        if not isinstance(program, TestProgram):
            raise _RequestError(
                ERR_BAD_REQUEST,
                f"program payload must be a TestProgram, got {type(program).__name__}",
            )
        fingerprint = netlist_fingerprint(program.netlist)
        canonical = self._netlists.get(fingerprint)
        if canonical is None:
            self._netlists[fingerprint] = program.netlist
        elif canonical is not program.netlist:
            program = dataclasses.replace(program, netlist=canonical)
        return fingerprint, program

    def _resolve_chips(self, params: dict):
        if "lot_id" in params:
            handle = _param(params, "lot_id", str)
            lot = self._lots.get(handle)
            if lot is None:
                raise _RequestError(
                    ERR_UNKNOWN_HANDLE, f"unknown or expired lot handle {handle!r}"
                )
            return lot
        chips = self._obj_param(params, "chips")
        if isinstance(chips, LotArrays):
            netlist = self._netlists.get(chips.fingerprint)
            if netlist is None:
                raise _RequestError(
                    ERR_UNKNOWN_NETLIST,
                    f"lot arrays reference unregistered netlist "
                    f"{chips.fingerprint!r}; call register_netlist first",
                )
            return lot_from_arrays(netlist, chips)
        if isinstance(chips, FabricatedLot):
            return chips
        return tuple(chips)

    async def _op_test_lot(self, params: dict, binary: bool) -> dict:
        # Program first: an uploaded program registers its netlist, so a
        # LotArrays chips payload drawn on it resolves by fingerprint.
        netlist_id, program = self._resolve_program(params)
        chips = self._resolve_chips(params)

        def job() -> dict:
            result = self._session.test(chips, program)
            return {
                "result": WireObj(result) if binary else pack_obj(result),
                "num_records": result.lot_size,
                "fraction_rejected": result.fraction_rejected(),
            }

        return await self._run_queued(netlist_id, job)

    async def _op_run_experiment(self, params: dict, binary: bool) -> dict:
        name = _param(params, "name", str)
        from repro.experiments.runner import EXPERIMENTS

        if name not in EXPERIMENTS:
            raise _RequestError(
                ERR_USER,
                f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}",
            )

        def job() -> dict:
            return {"report": self._session.run_experiment(name)}

        return await self._run_queued(_EXPERIMENT_QUEUE, job)

    async def _op_stats(self, params: dict, binary: bool) -> dict:
        def job() -> dict:
            # Runs on the exec thread so the worker_stats pool broadcast
            # never interleaves with a pipeline map on the shared pool.
            return {
                "session": self._session.stats(),
                "workers": self._session.executor.worker_stats(),
            }

        stats = await self._run_queued(_EXPERIMENT_QUEUE, job)
        stats["server"] = {
            "protocol": PROTOCOL_VERSION,
            "connections_open": self._connections_open,
            "connections_total": self._connections_total,
            "requests_by_op": dict(self._counters),
            "registered_netlists": len(self._netlists),
            "lots_retained": len(self._lots),
            "programs_retained": len(self._programs),
            "queue_depths": {
                key: queue.qsize() for key, queue in self._queues.items()
            },
        }
        return stats

    async def _op_shutdown(self, params: dict, binary: bool) -> dict:
        return {"stopping": True}

    _OPS: dict[str, Callable[["LotServer", dict, bool], Awaitable[dict]]] = {
        "ping": _op_ping,
        "register_netlist": _op_register_netlist,
        "fabricate": _op_fabricate,
        "build_program": _op_build_program,
        "test_lot": _op_test_lot,
        "run_experiment": _op_run_experiment,
        "stats": _op_stats,
        "shutdown": _op_shutdown,
    }
