"""The multi-client lot-testing server: :class:`LotServer`.

An asyncio front end that multiplexes many concurrent client
connections onto one shared :class:`repro.api.Session` — the same
shape as a test-floor DAQ service: many operators stream requests at
the one process that owns the hardware-facing hot path.

Execution model
---------------

* The event loop owns all sockets and never runs pipeline work.
* Requests that touch the pipeline (``fabricate``, ``build_program``,
  ``test_lot``, ``run_experiment``) are enqueued **per netlist** (FIFO
  order per netlist, round-robin fairness across netlists via queue
  consumers) and executed one at a time on a dedicated worker thread
  against the shared session.  Parallelism lives *below* that thread,
  in the session's process pool — so two clients hammering different
  netlists contend for the pool, not for locks.
* Because the session is shared, its compile-once caches are shared:
  any number of clients uploading the same netlist (same
  :func:`~repro.server.protocol.netlist_fingerprint`) compile its
  engine exactly once and ship its contexts to the pool once.  The
  session's ``max_contexts`` / ``max_bytes`` LRU bounds what stays
  resident, and a crashed pool worker is healed transparently by the
  executor's re-install/retry — in-flight requests from other clients
  never observe it.
* Results are **bit-identical** to direct ``Session`` calls: the server
  moves the same pickled bytes the in-process runtime ships to its pool
  workers; it never re-computes or re-rounds anything.

Responses on one connection are returned in request order; independent
connections interleave freely.  See ``docs/server.md`` for the protocol
spec and :mod:`repro.server.client` for the matching sync client.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import os
import signal
import sys
import threading
import traceback
from collections import Counter
from typing import Any, Awaitable, Callable

from repro import chaos
from repro.api import Session
from repro.circuit.netlist import Netlist
from repro.manufacturing.lot import FabricatedLot
from repro.manufacturing.process import ProcessRecipe
from repro.runtime import PoisonShardError, WorkerCrashError
from repro.server.core import (
    MISSING,
    HandleRegistry,
    JobQueues,
    ReplayCache,
    RequestError,
    param,
)
from repro.server.protocol import (
    ERR_BAD_FRAME,
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_POISON_SHARD,
    ERR_SHUTTING_DOWN,
    ERR_UNKNOWN_HANDLE,
    ERR_UNKNOWN_NETLIST,
    ERR_UNKNOWN_OP,
    ERR_USER,
    ERR_WORKER_CRASH,
    PROTOCOL_VERSION,
    FrameDecodeError,
    LotArrays,
    ProtocolError,
    WireObj,
    encode_frame,
    lot_from_arrays,
    netlist_fingerprint,
    pack_lot,
    pack_obj,
    read_frame_info,
    unpack_obj,
)
from repro.tester.program import TestProgram

__all__ = ["LotServer"]

_log = logging.getLogger("repro.server")

# Queue key for requests that are not tied to a client netlist (the
# named paper experiments build their own circuits internally).
_EXPERIMENT_QUEUE = "__experiments__"

# Environment default for the graceful-drain window (seconds): how long
# SIGTERM/SIGINT waits for in-flight requests before closing anyway.
_DRAIN_TIMEOUT_ENV = "REPRO_DRAIN_TIMEOUT"
_DEFAULT_DRAIN_TIMEOUT = 10.0

# Replay cache bounds: successful pipeline responses retained per client
# id, and client ids retained, both FIFO.  Small on purpose — the cache
# only needs to cover the retry window of a reconnecting client.
_REPLAY_PER_CLIENT = 8
_REPLAY_CLIENTS = 64

# The session-group label prefixed onto queue keys in stats: the TCP
# server runs every queue against its one shared session.
_SESSION_GROUP = "shared"

# The request-handler plumbing lives in repro.server.core (shared with
# the HTTP gateway); the old private names stay importable.
_MISSING = MISSING
_RequestError = RequestError
_param = param


class LotServer:
    """Serve lot-testing requests from many clients over one session.

    Parameters
    ----------
    host, port:
        TCP endpoint; ``port=0`` binds an ephemeral port (read
        :attr:`address` after startup).  Mutually exclusive with
        ``socket_path``.
    socket_path:
        Unix-domain socket path to listen on instead of TCP.
    engine, workers, max_contexts, max_bytes:
        Forwarded to the shared :class:`repro.api.Session` — the
        server's execution policy and cache budget.
    max_handles:
        Upper bound on server-retained lot and program handles (each
        kind separately, FIFO-evicted).  Evicted handles answer
        ``unknown-handle``; clients can always re-upload.
    max_queue_depth:
        High-water mark per netlist queue (queued + in flight).  A
        pipeline request arriving past it is rejected immediately with
        ``ERR_OVERLOADED`` and a ``retry_after`` hint instead of
        queueing unboundedly.  ``None`` (default) keeps the historical
        unbounded behavior.
    request_timeout:
        Per-request deadline in seconds.  A request that outlives it is
        answered ``ERR_DEADLINE``; the reply slot is freed even though
        the underlying pipeline job (uninterruptible on its thread) may
        still run to completion.  ``None`` disables deadlines.
    drain_timeout:
        How long graceful shutdown (SIGTERM/SIGINT or the ``shutdown``
        op) waits for in-flight requests to finish before closing
        anyway.  Defaults from ``REPRO_DRAIN_TIMEOUT``, else 10 s.
    dispatch_timeout:
        Forwarded to the shared session's executor — the pool-level
        watchdog against hung workers (``REPRO_DISPATCH_TIMEOUT``).
    backend_id:
        Set when this server runs as one backend of a
        :class:`repro.router.Router` federation.  Purely
        observability + chaos plumbing: the id rides the ``ping``
        banner and ``stats``, and the exec thread arms the
        ``router.backend`` injection point with it — which is how the
        chaos suite SIGKILLs *a specific backend* mid-request.

    Run it blocking with :meth:`run` (the ``repro-server`` CLI does), or
    in a thread via :func:`repro.server.testing.running_server`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        engine: str = "batch",
        workers: int | str = 1,
        max_contexts: int | None = None,
        max_bytes: int | None = None,
        max_handles: int = 256,
        max_queue_depth: int | None = None,
        request_timeout: float | None = None,
        drain_timeout: float | None = None,
        dispatch_timeout: float | None = None,
        backend_id: int | None = None,
    ):
        if socket_path is not None and port:
            raise ValueError("pass either port or socket_path, not both")
        if max_handles < 1:
            raise ValueError(f"max_handles must be >= 1, got {max_handles}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        if drain_timeout is None:
            env = os.environ.get(_DRAIN_TIMEOUT_ENV)
            drain_timeout = float(env) if env else _DEFAULT_DRAIN_TIMEOUT
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._max_handles = max_handles
        self._max_queue_depth = max_queue_depth
        self._request_timeout = request_timeout
        self._drain_timeout = max(0.0, float(drain_timeout))
        self._backend_id = backend_id
        self._session = Session(
            engine=engine,
            workers=workers,
            max_contexts=max_contexts,
            max_bytes=max_bytes,
            dispatch_timeout=dispatch_timeout,
        )
        self._netlists: dict[str, Netlist] = {}
        # Lot and program handles share one counter (preserves the
        # historical numbering where handles never collide across kinds).
        handle_counter = [0]
        self._lots = HandleRegistry("lot", max_handles, handle_counter)
        # handle -> (netlist fingerprint, program); the fingerprint is
        # stored so test_lot-by-handle never re-hashes the netlist.
        self._programs = HandleRegistry("prog", max_handles, handle_counter)
        # Per-netlist FIFO queues with backpressure; every queue drains
        # onto the one exec thread via _exec_runner.
        self._jobs = JobQueues(self._exec_runner, max_queue_depth)
        self._conn_tasks: set[asyncio.Task] = set()
        self._counters: Counter[str] = Counter()
        # (cid, rid) -> successful response: lets a reconnecting client
        # replay an idempotent request id without re-running the
        # pipeline work (or minting a second handle for the same call).
        self._replay = ReplayCache(_REPLAY_PER_CLIENT, _REPLAY_CLIENTS)
        self._bad_frames = 0
        self._deadline_expirations = 0
        self._connections_open = 0
        self._connections_total = 0
        # Requests that were in flight when shutdown began and finished
        # inside the drain window (the CLI's exit message).
        self.drained_requests = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._stopping = False
        self._started = threading.Event()
        self._finished = threading.Event()
        self.address: str | None = None
        # The one thread that touches the shared session; its FIFO queue
        # is what serializes pipeline work across netlist queues.
        self._exec: Any = None

    # ----------------------------------------------------------- lifecycle

    def run(self, verbose: bool = False) -> None:
        """Bind, announce (``verbose``), and serve until shutdown (blocking)."""
        try:
            asyncio.run(self._main(verbose))
        finally:
            self._finished.set()
            self._started.set()  # unblock waiters even on startup failure

    def wait_started(self, timeout: float = 30.0) -> None:
        """Block until the server is listening (for run-in-a-thread users)."""
        if not self._started.wait(timeout):
            raise TimeoutError("server did not start listening in time")
        if self.address is None:
            raise RuntimeError("server failed during startup")

    def request_shutdown(self) -> None:
        """Ask the server to stop, from any thread (idempotent)."""
        loop, stop = self._loop, self._stop_event
        if loop is None or stop is None:
            self._stopping = True
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass  # loop already closed — the server is already down

    async def _main(self, verbose: bool) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._stopping:  # shutdown requested before startup
            self._stop_event.set()
        # Ctrl-C / SIGTERM trigger the same graceful drain as the
        # shutdown op.  Registration fails off the main thread (the
        # running_server test helper) and on exotic loops — both fall
        # back to the default handlers, which is exactly the old
        # behavior.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._loop.add_signal_handler(signum, self._stop_event.set)
            except (ValueError, NotImplementedError, OSError, RuntimeError):
                pass
        self._exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-server-exec"
        )
        if self._socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self._socket_path
            )
            self.address = f"unix:{self._socket_path}"
        else:
            server = await asyncio.start_server(
                self._handle_connection, host=self._host, port=self._port
            )
            bound = server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        if verbose:
            print(f"repro-server listening on {self.address}", flush=True)
        self._started.set()
        try:
            await self._stop_event.wait()
            self._stopping = True
        finally:
            # Graceful drain: stop accepting, let requests that were in
            # flight at shutdown finish (their connection handlers are
            # still alive to deliver the replies), then close.  New
            # requests arriving meanwhile answer ERR_SHUTTING_DOWN.
            self._stopping = True
            server.close()
            in_flight = self._jobs.total_pending()
            if in_flight and self._drain_timeout > 0:
                deadline = self._loop.time() + self._drain_timeout
                while self._jobs.total_pending() and self._loop.time() < deadline:
                    await asyncio.sleep(0.05)
            self.drained_requests = in_flight - self._jobs.total_pending()
            # Cancel live connection handlers explicitly: since Python
            # 3.12.1 ``wait_closed`` blocks until every handler
            # coroutine finishes, so an idle client that never
            # disconnects would otherwise hang shutdown.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            try:
                await server.wait_closed()
            except Exception:
                pass
            await self._jobs.aclose()
            # Let an in-flight pipeline call finish, then release the pool.
            self._exec.shutdown(wait=True)
            self._session.close()
            if self._socket_path is not None:
                import os

                try:
                    os.unlink(self._socket_path)
                except OSError:
                    pass

    # --------------------------------------------------------- connections

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections_open += 1
        self._connections_total += 1
        try:
            while True:
                try:
                    frame = await read_frame_info(reader)
                except FrameDecodeError as exc:
                    # The body was read in full, so the stream is still
                    # frame-synchronized: report the bad frame and keep
                    # serving this connection.  (No request id — the
                    # body never decoded far enough to have one.)
                    self._bad_frames += 1
                    writer.write(
                        encode_frame(
                            self._error_response(None, ERR_BAD_FRAME, str(exc))
                        )
                    )
                    await writer.drain()
                    continue
                except ProtocolError:
                    break  # stream desynchronized; drop the connection
                if frame is None:
                    break
                # Answer in the format the request arrived in, so one
                # server serves protocol-1 and protocol-2 clients alike.
                response, stop_after = await self._handle_request(
                    frame.message, frame.binary
                )
                reply = encode_frame(response, binary=frame.binary)
                if _log.isEnabledFor(logging.DEBUG):
                    _log.debug(
                        "op=%s id=%s format=%s bytes_in=%d bytes_out=%d",
                        frame.message.get("op"),
                        frame.message.get("id"),
                        "binary" if frame.binary else "json",
                        frame.nbytes,
                        len(reply),
                    )
                fault = chaos.fire("server.reply", defer=("delay",))
                if fault is not None and fault.action == "reset":
                    break  # injected: connection dies with the reply unsent
                if fault is not None and fault.action == "truncate":
                    writer.write(reply[: max(1, len(reply) // 2)])
                    await writer.drain()
                    break  # injected: half a frame, then a dead socket
                if fault is not None and fault.action == "delay":
                    await asyncio.sleep(
                        fault.value if fault.value is not None else 0.1
                    )
                writer.write(reply)
                await writer.drain()
                if stop_after:
                    self._stop_event.set()  # type: ignore[union-attr]
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(
        self, request: dict, binary: bool = False
    ) -> tuple[dict, bool]:
        rid = request.get("id")
        if not isinstance(rid, int) or isinstance(rid, bool):
            return self._error_response(None, ERR_BAD_REQUEST, "request id must be an integer"), False
        op = request.get("op")
        params = request.get("params", {})
        cid = request.get("cid")
        # Idempotent replay: a client that reconnected mid-request
        # retries the same (cid, id); if the first attempt already
        # succeeded (its reply died on the wire), answer from the cache
        # instead of running the pipeline work — and its handles —
        # twice.
        replayable = isinstance(cid, str) and op in self._REPLAY_OPS
        if replayable:
            cached = self._replay.lookup(cid, rid)
            if cached is not None:
                return cached, False
        try:
            if not isinstance(op, str):
                raise _RequestError(ERR_BAD_REQUEST, "request op must be a string")
            if not isinstance(params, dict):
                raise _RequestError(ERR_BAD_REQUEST, "request params must be an object")
            if self._stopping:
                raise _RequestError(ERR_SHUTTING_DOWN, "server is shutting down")
            handler = self._OPS.get(op)
            if handler is None:
                raise _RequestError(
                    ERR_UNKNOWN_OP,
                    f"unknown op {op!r}; choose from {sorted(self._OPS)}",
                )
            self._counters[op] += 1
            coro = handler(self, params, binary)
            if self._request_timeout is not None and op != "shutdown":
                try:
                    result = await asyncio.wait_for(coro, self._request_timeout)
                except asyncio.TimeoutError:
                    # The reply slot is freed now; the pipeline job
                    # itself is uninterruptible on its thread and may
                    # still finish (harmlessly) behind the deadline.
                    self._deadline_expirations += 1
                    raise _RequestError(
                        ERR_DEADLINE,
                        f"request exceeded the {self._request_timeout:g}s "
                        f"server deadline",
                    ) from None
            else:
                result = await coro
            response = {"id": rid, "ok": True, "result": result}
            if replayable:
                self._replay.store(cid, rid, response)
            return response, op == "shutdown"
        except _RequestError as exc:
            return self._error_response(rid, exc.code, str(exc), exc.retry_after), False
        except asyncio.CancelledError:
            raise
        except PoisonShardError as exc:
            return self._error_response(
                rid,
                ERR_POISON_SHARD,
                f"quarantined poison shard: {exc} "
                f"(fingerprint={exc.fingerprint!r}, "
                f"shard_index={exc.shard_index!r})",
            ), False
        except WorkerCrashError as exc:
            return self._error_response(
                rid,
                ERR_WORKER_CRASH,
                f"pool worker crash recovery exhausted: {exc} "
                f"(token={exc.token!r}, shard_index={exc.shard_index!r})",
            ), False
        except ProtocolError as exc:
            return self._error_response(rid, ERR_BAD_REQUEST, str(exc)), False
        except (ValueError, KeyError, IndexError, TypeError) as exc:
            return self._error_response(rid, ERR_USER, f"{type(exc).__name__}: {exc}"), False
        except Exception as exc:  # pragma: no cover - defensive
            traceback.print_exc(file=sys.stderr)
            return self._error_response(rid, ERR_INTERNAL, f"{type(exc).__name__}: {exc}"), False

    @staticmethod
    def _error_response(
        rid, code: str, message: str, retry_after: float | None = None
    ) -> dict:
        error: dict = {"code": code, "message": message}
        if retry_after is not None:
            error["retry_after"] = retry_after
        return {"id": rid, "ok": False, "error": error}

    # ------------------------------------------------------ queued execution

    async def _run_queued(self, key: str, fn: Callable[[], Any]) -> Any:
        """Enqueue ``fn`` on the per-netlist queue and await its result.

        Backpressure lives in :class:`~repro.server.core.JobQueues`:
        with ``max_queue_depth`` set, a request arriving while the key's
        queued+in-flight count is at the high-water mark is rejected
        *immediately* with ``ERR_OVERLOADED`` and a ``retry_after`` hint
        scaled to the backlog, so overload costs the client one
        round-trip instead of an unbounded queue wait.
        """
        return await self._jobs.submit(key, fn)

    async def _exec_runner(self, key: str, fn: Callable[[], Any]) -> Any:
        """Run one dequeued job on the single exec thread.

        All queue consumers submit to the same single-thread executor,
        whose FIFO run queue interleaves ready requests from different
        netlists fairly while keeping the shared session single-threaded.
        """
        return await self._loop.run_in_executor(  # type: ignore[union-attr]
            self._exec, self._run_job, fn
        )

    def _run_job(self, fn: Callable[[], Any]) -> Any:
        """Run one pipeline job on the exec thread (chaos-instrumented)."""
        chaos.fire("server.job")  # delay faults sleep here, off the loop
        if self._backend_id is not None:
            # Federation seam: lets a schedule SIGKILL *this* backend
            # (by id) mid-request, which the router must absorb by
            # rerouting to the ring's next node.
            chaos.fire("router.backend", index=self._backend_id)
        return fn()

    def _netlist_for(self, params: dict) -> tuple[str, Netlist]:
        netlist_id = _param(params, "netlist_id", str)
        netlist = self._netlists.get(netlist_id)
        if netlist is None:
            raise _RequestError(
                ERR_UNKNOWN_NETLIST,
                f"netlist {netlist_id!r} is not registered; call register_netlist first",
            )
        return netlist_id, netlist

    @staticmethod
    def _obj_param(params: dict, name: str, default=_MISSING):
        """Fetch a domain-object parameter in either wire format.

        JSON-frame clients send base64 pickle strings; binary-frame
        clients send the object itself (already decoded from the frame's
        buffer section).  Both are accepted on every request, regardless
        of which format the *envelope* used.
        """
        value = _param(params, name, None, default=default)
        if isinstance(value, str):
            return unpack_obj(value)
        return value

    # ------------------------------------------------------------------ ops

    async def _op_ping(self, params: dict, binary: bool) -> dict:
        banner = {
            "pong": True,
            "server": "repro-server",
            "protocol": PROTOCOL_VERSION,
        }
        if self._backend_id is not None:
            banner["backend_id"] = self._backend_id
        return banner

    async def _op_register_netlist(self, params: dict, binary: bool) -> dict:
        netlist = self._obj_param(params, "netlist")
        if not isinstance(netlist, Netlist):
            raise _RequestError(
                ERR_BAD_REQUEST,
                f"netlist payload must be a Netlist, got {type(netlist).__name__}",
            )
        fingerprint = netlist_fingerprint(netlist)
        known = fingerprint in self._netlists
        if not known:
            self._netlists[fingerprint] = netlist
        return {"netlist_id": fingerprint, "known": known}

    async def _op_fabricate(self, params: dict, binary: bool) -> dict:
        netlist_id, netlist = self._netlist_for(params)
        recipe = self._obj_param(params, "recipe")
        if not isinstance(recipe, ProcessRecipe):
            raise _RequestError(
                ERR_BAD_REQUEST,
                f"recipe payload must be a ProcessRecipe, got {type(recipe).__name__}",
            )
        num_chips = _param(params, "num_chips", int)
        dies_per_wafer = _param(params, "dies_per_wafer", int, default=100)
        seed = _param(params, "seed", (int, str, type(None)), default=None)
        return_lot = _param(params, "return_lot", bool, default=True)

        def job() -> dict:
            lot = self._session.fabricate(
                netlist,
                recipe,
                num_chips,
                dies_per_wafer=dies_per_wafer,
                seed=seed,
            )
            handle = self._lots.add(lot)
            result = {
                "lot_id": handle,
                "num_chips": len(lot),
                "empirical_yield": lot.empirical_yield(),
            }
            if return_lot:
                if binary:
                    # SoA wire form when every chip encodes; the pickled
                    # object fallback still rides the binary frame.
                    result["lot"] = WireObj(pack_lot(netlist, lot) or lot)
                else:
                    result["lot"] = pack_obj(lot)
            return result

        return await self._run_queued(netlist_id, job)

    async def _op_build_program(self, params: dict, binary: bool) -> dict:
        netlist_id, netlist = self._netlist_for(params)
        patterns = self._obj_param(params, "patterns")
        collapse = _param(params, "collapse", bool, default=True)
        return_program = _param(params, "return_program", bool, default=True)

        def job() -> dict:
            program = self._session.build_program(netlist, patterns, collapse=collapse)
            handle = self._programs.add((netlist_id, program))
            result = {
                "program_id": handle,
                "num_patterns": len(program),
                "final_coverage": program.final_coverage,
            }
            if return_program:
                result["program"] = (
                    WireObj(program) if binary else pack_obj(program)
                )
            return result

        return await self._run_queued(netlist_id, job)

    def _resolve_program(self, params: dict) -> tuple[str, TestProgram]:
        """The request's program and its netlist queue key.

        Accepts a server handle (``program_id``) or an uploaded pickled
        program; uploads are canonicalized onto the server's registered
        netlist (by fingerprint) so they share the compiled caches, and
        register their netlist implicitly when it is new.
        """
        if "program_id" in params:
            handle = _param(params, "program_id", str)
            entry = self._programs.get(handle)
            if entry is None:
                raise _RequestError(
                    ERR_UNKNOWN_HANDLE, f"unknown or expired program handle {handle!r}"
                )
            return entry
        program = self._obj_param(params, "program")
        if not isinstance(program, TestProgram):
            raise _RequestError(
                ERR_BAD_REQUEST,
                f"program payload must be a TestProgram, got {type(program).__name__}",
            )
        fingerprint = netlist_fingerprint(program.netlist)
        canonical = self._netlists.get(fingerprint)
        if canonical is None:
            self._netlists[fingerprint] = program.netlist
        elif canonical is not program.netlist:
            program = dataclasses.replace(program, netlist=canonical)
        return fingerprint, program

    def _resolve_chips(self, params: dict):
        if "lot_id" in params:
            handle = _param(params, "lot_id", str)
            lot = self._lots.get(handle)
            if lot is None:
                raise _RequestError(
                    ERR_UNKNOWN_HANDLE, f"unknown or expired lot handle {handle!r}"
                )
            return lot
        chips = self._obj_param(params, "chips")
        if isinstance(chips, LotArrays):
            netlist = self._netlists.get(chips.fingerprint)
            if netlist is None:
                raise _RequestError(
                    ERR_UNKNOWN_NETLIST,
                    f"lot arrays reference unregistered netlist "
                    f"{chips.fingerprint!r}; call register_netlist first",
                )
            return lot_from_arrays(netlist, chips)
        if isinstance(chips, FabricatedLot):
            return chips
        return tuple(chips)

    async def _op_test_lot(self, params: dict, binary: bool) -> dict:
        # Program first: an uploaded program registers its netlist, so a
        # LotArrays chips payload drawn on it resolves by fingerprint.
        netlist_id, program = self._resolve_program(params)
        chips = self._resolve_chips(params)

        def job() -> dict:
            result = self._session.test(chips, program)
            return {
                "result": WireObj(result) if binary else pack_obj(result),
                "num_records": result.lot_size,
                "fraction_rejected": result.fraction_rejected(),
            }

        return await self._run_queued(netlist_id, job)

    async def _op_run_experiment(self, params: dict, binary: bool) -> dict:
        name = _param(params, "name", str)
        from repro.experiments.runner import EXPERIMENTS

        if name not in EXPERIMENTS:
            raise _RequestError(
                ERR_USER,
                f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}",
            )

        def job() -> dict:
            return {"report": self._session.run_experiment(name)}

        return await self._run_queued(_EXPERIMENT_QUEUE, job)

    async def _op_stats(self, params: dict, binary: bool) -> dict:
        def job() -> dict:
            # Runs on the exec thread so the worker_stats pool broadcast
            # never interleaves with a pipeline map on the shared pool.
            return {
                "session": self._session.stats(),
                "workers": self._session.executor.worker_stats(),
            }

        stats = await self._run_queued(_EXPERIMENT_QUEUE, job)
        stats["server"] = {
            "protocol": PROTOCOL_VERSION,
            "backend_id": self._backend_id,
            "connections_open": self._connections_open,
            "connections_total": self._connections_total,
            "requests_by_op": dict(self._counters),
            "registered_netlists": len(self._netlists),
            "lots_retained": len(self._lots),
            "programs_retained": len(self._programs),
            # Queue keys carry the session-group prefix ("shared/" —
            # the TCP server has exactly one session group), so the
            # labels line up with the gateway's multi-group metrics.
            "queue_depths": {
                f"{_SESSION_GROUP}/{key}": depth
                for key, depth in self._jobs.queue_depths().items()
            },
            "pending_by_queue": {
                f"{_SESSION_GROUP}/{key}": count
                for key, count in self._jobs.pending_by_queue().items()
            },
            "overload_rejections": self._jobs.overload_rejections,
            "bad_frames": self._bad_frames,
            "deadline_expirations": self._deadline_expirations,
            "replay_hits": self._replay.hits,
            "draining": self._stopping,
        }
        return stats

    async def _op_shutdown(self, params: dict, binary: bool) -> dict:
        return {"stopping": True}

    # Ops whose successful responses enter the idempotent replay cache.
    # ping/stats/shutdown are cheap or stateful-by-design and always
    # re-execute.
    _REPLAY_OPS = frozenset(
        {"register_netlist", "fabricate", "build_program", "test_lot", "run_experiment"}
    )

    _OPS: dict[str, Callable[["LotServer", dict, bool], Awaitable[dict]]] = {
        "ping": _op_ping,
        "register_netlist": _op_register_netlist,
        "fabricate": _op_fabricate,
        "build_program": _op_build_program,
        "test_lot": _op_test_lot,
        "run_experiment": _op_run_experiment,
        "stats": _op_stats,
        "shutdown": _op_shutdown,
    }
