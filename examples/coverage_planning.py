"""Coverage planning across process corners (the Figs. 2-4 use case).

A test engineer rarely knows yield and n0 exactly; this example sweeps
both and prints the required-coverage surface for a quality target, plus
an ASCII rendering of the Fig. 4 style curve family — the chart the paper
intends people to read requirements off.

Run:  python examples/coverage_planning.py
"""

import numpy as np

from repro.core.coverage_solver import coverage_sweep, required_coverage
from repro.utils.asciiplot import AsciiPlot
from repro.utils.tables import TextTable


def main() -> None:
    target = 0.001  # 1-in-1000 outgoing quality

    table = TextTable(
        ["n0"] + [f"y={y:.1f}" for y in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)],
        title=f"Required stuck-at coverage for field reject rate {target}",
    )
    for n0 in (1, 2, 4, 6, 8, 10, 12):
        row = [f"{n0}"]
        for y in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8):
            row.append(f"{required_coverage(y, n0, target):.3f}")
        table.add_row(row)
    print(table.render())
    print()

    plot = AsciiPlot(
        width=70,
        height=20,
        title=f"Required coverage vs yield (r = {target}) — the Fig. 4 family",
        xlabel="process yield y",
    )
    yields = np.linspace(0.02, 0.98, 60)
    for n0 in (1, 2, 4, 8, 12):
        curve = coverage_sweep(float(n0), target, yields=yields)
        plot.add_series(f"n0={n0}", list(curve.yields), list(curve.coverages))
    print(plot.render())
    print()

    # The planning insight the paper closes on: a denser/finer process
    # (higher n0) RELAXES the coverage requirement at any yield.
    low = required_coverage(0.2, 2.0, target)
    high = required_coverage(0.2, 10.0, target)
    print(
        f"at 20% yield: n0=2 needs {low:.1%} coverage, n0=10 only {high:.1%} "
        f"— {low - high:.1%} of test development saved by measuring n0."
    )


if __name__ == "__main__":
    main()
