"""Wafer-level quality analytics: maps, radial zones, and model fit.

Extends the paper's lot-level view down to the wafer: fabricate wafers
with a radial defect gradient (edges worse, as real lines are), draw the
wafer map, report zone yields, and fit both the paper's shifted-Poisson
model and the mixed-Poisson extension to the lot's fault counts — showing
why the clustered process prefers the heavier-tailed model.

Run:  python examples/wafer_quality.py
"""

import numpy as np

from repro.core.coverage_solver import required_coverage
from repro.core.fault_distribution import FaultDistribution
from repro.core.mixed_poisson import MixedPoissonFaultModel
from repro.defects.layout import ChipLayout
from repro.experiments import config
from repro.manufacturing import ProcessRecipe, WaferMap
from repro.utils.tables import TextTable


def main() -> None:
    chip = config.make_chip()
    recipe = ProcessRecipe(
        defect_density=1.2,
        clustering=0.5,
        mean_defect_radius=0.02,
        activation_probability=0.7,
    )
    wafer_map = WaferMap(
        recipe, ChipLayout(chip), grid=14, edge_excess=2.5
    )
    print(f"wafer: {wafer_map.dies_per_wafer} dies of {chip.name}")
    print()
    print("one wafer ('.' good, 'X' defective):")
    print(WaferMap.render(wafer_map.fabricate(seed=7), 14))
    print()

    placed = []
    for seed in range(40):
        placed.extend(wafer_map.fabricate(seed=seed))
    table = TextTable(
        ["radial zone", "dies", "yield"],
        title=f"Zone yields over {len(placed)} dies (edges suffer)",
    )
    for lo, hi, zone_yield in WaferMap.zone_yields(placed, 3):
        count = sum(1 for p in placed if lo <= p.radial < hi or (hi == 1.0 and p.radial == 1.0))
        table.add_row([f"[{lo:.2f}, {hi:.2f})", count, f"{zone_yield:.3f}"])
    print(table.render())
    print()

    # Fit both fault-count models to the whole lot.
    counts = np.array([p.chip.fault_count for p in placed])
    mixed = MixedPoissonFaultModel.fit(counts)
    shifted = FaultDistribution(mixed.yield_, mixed.n0)

    def log_likelihood(pmf) -> float:
        return float(
            sum(np.log(max(pmf(int(n)), 1e-300)) for n in counts)
        )

    print(
        f"fault-count model fit: yield {mixed.yield_:.3f}, n0 {mixed.n0:.2f}, "
        f"clustering {mixed.clustering:.2f}"
    )
    print(
        f"  log-likelihood: mixed Poisson {log_likelihood(mixed.pmf):.0f}  vs  "
        f"shifted Poisson {log_likelihood(shifted.pmf):.0f}"
    )
    shifted_required = required_coverage(mixed.yield_, mixed.n0, 0.01)
    print(
        f"  coverage for r=0.01: mixed {mixed.required_coverage(0.01):.3f}  "
        f"vs  shifted-Poisson model {shifted_required:.3f}"
    )


if __name__ == "__main__":
    main()
