"""A complete test-development flow on a gate-level circuit.

Exercises the substrate end to end the way a 1981 test engineer would
have: random patterns for the easy faults, PODEM for the resistant tail
(with fault dropping), reverse-order compaction, and a final
fault-simulation sign-off with the coverage curve the quality model
consumes.

Engine selection: everything that fault-simulates takes an ``engine``
argument —

* ``FaultSimulator(circuit)`` / ``engine="batch"`` (the default) uses the
  fault-parallel NumPy engine: one ``(num_faults + 1, num_signals)``
  ``uint64`` array per 64-pattern block, row 0 the good machine, one
  faulty machine per other row, every gate evaluated once for all faults;
* ``engine="compiled"`` is the classical one-fault-at-a-time word loop;
* ``engine="event"`` is the scalar reference implementation.

All three produce bit-identical results — swap ``ENGINE`` below to see
the wall-clock difference on this flow.

Run:  python examples/atpg_flow.py
"""

from repro.atpg import PodemGenerator, compact_reverse, random_patterns
from repro.circuit.generators import array_multiplier
from repro.faults import FaultSimulator, collapse_equivalent, full_fault_universe
from repro.tester import TestProgram

ENGINE = "batch"  # or "compiled" / "event" — identical results, different speed


def main() -> None:
    circuit = array_multiplier(4)
    universe = full_fault_universe(circuit)
    collapsed = collapse_equivalent(circuit)
    print(
        f"circuit: {circuit.name}, {circuit.num_gates} gates; fault universe "
        f"{len(universe)} ({len(collapsed)} after equivalence collapsing)"
    )

    # Phase 1: random patterns mop up the easy faults.
    simulator = FaultSimulator(circuit, engine=ENGINE)
    randoms = random_patterns(circuit, 48, seed=42)
    random_result = simulator.run(randoms, faults=collapsed)
    print(
        f"phase 1 (random): {len(randoms)} patterns -> "
        f"{random_result.coverage:.1%} collapsed coverage"
    )

    # Phase 2: PODEM targets what random patterns missed; fault dropping
    # simulates each new pattern against the untargeted tail so faults it
    # catches incidentally skip their own PODEM run.
    generator = PodemGenerator(circuit, seed=1, backtrack_limit=2000)
    deterministic, report = generator.generate_suite(
        random_result.undetected_faults(), fault_drop=True, engine=ENGINE
    )
    print(
        f"phase 2 (PODEM): {len(deterministic)} patterns for "
        f"{len(report['detected'])} resistant faults; "
        f"{len(report['untestable'])} proved redundant, "
        f"{len(report['aborted'])} aborted"
    )

    # Phase 3: compact the combined set without losing coverage.
    combined = randoms + deterministic
    compacted = compact_reverse(circuit, combined, faults=collapsed, engine=ENGINE)
    final = simulator.run(compacted, faults=collapsed)
    print(
        f"phase 3 (compaction): {len(combined)} -> {len(compacted)} patterns, "
        f"coverage {final.coverage:.1%}"
    )

    # Sign-off: the ordered program and its coverage profile.
    program = TestProgram.build(circuit, compacted, engine=ENGINE)
    print(
        f"sign-off: program of {len(program)} patterns reaches "
        f"{program.final_coverage:.1%} of the full universe"
    )
    curve = program.coverage_curve
    milestones = [0] + [k for k in range(1, len(curve)) if curve[k] - curve[k - 1] > 0.02]
    print("coverage profile (pattern -> cumulative coverage):")
    for k in milestones[:12]:
        print(f"  pattern {k + 1:3d}: {curve[k]:.1%}")


if __name__ == "__main__":
    main()
