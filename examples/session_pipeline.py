"""The Session facade: fabricate -> test -> estimate -> experiment.

One :class:`repro.api.Session` owns the worker pool and the
compiled-circuit caches, so every stage below — and every *repeat* of a
stage — reuses one compiled form of the chip instead of paying setup
per call.  This is the whole-pipeline companion to ``quickstart.py``
(which uses the analytic model alone).

Run:  PYTHONPATH=src python examples/session_pipeline.py
"""

from repro.api import Session
from repro.atpg.random_gen import random_patterns
from repro.core.estimation import estimate_n0_least_squares
from repro.experiments import config


def main() -> None:
    with Session(engine="batch", workers="auto") as session:
        chip = config.make_chip()
        recipe = config.make_recipe()

        # Fabricate the paper's 277-chip lot (bit-identical at any
        # worker count; wafers fabricate in parallel on the pool).
        lot = session.fabricate(
            chip, recipe, num_chips=277, dies_per_wafer=16, seed=27
        )
        print(
            f"lot: {len(lot)} chips, yield {lot.empirical_yield():.3f}, "
            f"true n0 {lot.empirical_n0():.2f}"
        )

        # Build the test program: the coverage curve is the x-axis of
        # the paper's calibration.
        program = session.build_program(
            chip, random_patterns(chip, 96, seed=7)
        )
        print(f"program: {len(program)} patterns, "
              f"final coverage {program.final_coverage:.3f}")

        # First-fail test and calibrate n0 from the fail curve (Fig. 5).
        result = session.test(lot, program)
        n0 = estimate_n0_least_squares(
            result.coverage_points(), lot.empirical_yield()
        )
        print(f"calibrated n0 = {n0:.1f}  (paper: 8)")

        # Re-testing through the same session ships nothing new to the
        # pool workers — the compiled context is cached by token.
        session.test(lot, program)
        print(f"session stats after a repeat test: {session.stats()}")

        # Whole named experiments run through the same pool and caches.
        print()
        print(session.run_experiment("fig1"))


if __name__ == "__main__":
    main()
