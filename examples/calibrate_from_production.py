"""The paper's full workflow: calibrate n0 from a production lot.

Section 5 of the paper prescribes: fault-simulate a preliminary test
sequence to get its cumulative-coverage profile, test a lot of one or two
hundred chips recording each chip's first failing pattern, overlay the
cumulative fail fraction on the P(f) family, and pick the closest n0.

Here the "production line" is the Monte-Carlo fab: a synthetic ~215-gate
chip fabricated at 7-percent yield with clustered spot defects.  We then
use the calibrated model exactly as a product engineer would — to set the
coverage requirement for the outgoing quality target.

Run:  python examples/calibrate_from_production.py
"""

from repro import QualityModel
from repro.experiments import config
from repro.tester import LotTestResult, WaferTester


def main() -> None:
    chip = config.make_chip()
    print(f"chip: {chip.name}, {chip.num_gates} gates, "
          f"{len(chip.inputs)} inputs, {len(chip.outputs)} outputs")

    # 1. Preliminary test sequence, fault-simulated for its coverage curve.
    program = config.make_program(chip)
    print(f"test program: {len(program)} patterns, "
          f"final stuck-at coverage {program.final_coverage:.1%} "
          f"of {program.universe_size} faults")

    # 2. Fabricate and test a lot, first-fail mode.
    lot = config.make_lot(chip)
    tester = WaferTester(program)
    result = LotTestResult(
        program=program, records=tuple(tester.test_lot(lot.chips))
    )
    print(f"lot: {len(lot)} chips, empirical yield "
          f"{lot.empirical_yield():.1%}, "
          f"{result.fraction_rejected():.1%} rejected by the program")
    print()
    print(result.to_table(checkpoints=None).render())
    print()

    # 3. Calibrate the quality model from the fail curve.
    model = QualityModel.calibrate(
        result.coverage_points(),
        yield_=lot.empirical_yield(),
        lot_size=len(lot),
        method="least_squares",
    )
    report = model.calibration_report
    print(f"calibrated n0 = {model.n0:.1f} "
          f"(slope estimate {report.n0_slope:.1f}, "
          f"MLE {report.n0_mle:.1f}; "
          f"fab ground truth {lot.empirical_n0():.1f})")
    print()

    # 4. Use the model: coverage requirement for 1-in-1000 quality.
    for target in (0.01, 0.001):
        print(f"for field reject rate {target}: need "
              f"{model.required_coverage(target):.1%} fault coverage")


if __name__ == "__main__":
    main()
