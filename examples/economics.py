"""How much testing is worth paying for?

The paper's introduction observes that test development and application
costs "increase very rapidly" near full coverage — the economic reason a
model like theirs matters.  This example closes the loop: calibrate a
test-length model from a real fault-simulated coverage curve, price tester
time and field escapes, and find the cost-optimal coverage for several
escape costs.

Run:  python examples/economics.py
"""

from repro.core.economics import TestEconomics, TestLengthModel
from repro.core.quality import QualityModel
from repro.experiments import config
from repro.utils.tables import TextTable


def main() -> None:
    # Quality model: the paper's Section 7 chip.
    quality = QualityModel(yield_=0.07, n0=8.0)

    # Test-length model from the canonical program's fault-simulated curve.
    program = config.make_program(num_patterns=64)
    length = TestLengthModel.fit(program.coverage_curve)
    print(
        f"test-length model: ~{length.tau:.1f} patterns per 'e-fold' of "
        f"undetected faults (fit from a {len(program)}-pattern program)"
    )
    print(
        f"  -> 90% coverage needs ~{length.patterns(0.90):.0f} patterns, "
        f"99% needs ~{length.patterns(0.99):.0f}, "
        f"99.9% needs ~{length.patterns(0.999):.0f}"
    )
    print()

    table = TextTable(
        [
            "escape cost ($)",
            "optimal coverage",
            "test $/chip",
            "escape $/chip",
            "reject rate at optimum",
        ],
        title="Cost-optimal coverage (pattern cost $0.001/chip)",
    )
    for escape_cost in (10.0, 100.0, 1000.0, 10000.0):
        econ = TestEconomics(
            quality, length, pattern_cost=0.001, escape_cost=escape_cost
        )
        best = econ.optimal_coverage()
        table.add_row(
            [
                f"{escape_cost:g}",
                f"{best.coverage:.3f}",
                f"{best.test_cost:.3f}",
                f"{best.escape_cost:.3f}",
                f"{quality.reject_rate(best.coverage):.4f}",
            ]
        )
    print(table.render())
    print()
    print(
        "even at a $10,000 escape cost the optimum stays below 100% — the\n"
        "exponential cost of the last faults always loses to the shrinking\n"
        "benefit, which is the economic core of the paper's argument."
    )


if __name__ == "__main__":
    main()
