"""Will the next process shrink make testing easier or harder?

Section 8 of the paper predicts both yield and n0 rise when a design
moves to finer design rules, and both *reduce* the required coverage.
This example runs the analytic shrink study for a product migrating from
a mature process, then verifies the n0 mechanism with the Monte-Carlo fab.

Run:  python examples/fineline_shrink.py
"""

from repro.core.scaling import ShrinkStudy
from repro.experiments import config
from repro.manufacturing import ProcessRecipe, fabricate_lot
from repro.utils.tables import TextTable
from repro.yieldmodels.models import NegativeBinomialYield


def main() -> None:
    study = ShrinkStudy(
        yield_model=NegativeBinomialYield(clustering=2.0),
        defect_density=2.0,     # defects per cm^2, say
        base_area=1.0,          # cm^2 die at the current node
        base_n0=8.0,            # calibrated on the current node
        multiplicity_exponent=2.0,
    )
    target = 0.005

    table = TextTable(
        ["node shrink", "die area", "yield", "n0", "required coverage"],
        title=f"Shrink study, quality target r = {target}",
    )
    for scenario in study.sweep([1.0, 0.9, 0.8, 0.7, 0.6, 0.5], target):
        table.add_row(
            [
                f"{scenario.shrink:.1f}x",
                f"{scenario.area:.2f}",
                f"{scenario.yield_:.1%}",
                f"{scenario.n0:.1f}",
                f"{scenario.required_coverage:.1%}",
            ]
        )
    print(table.render())
    print()

    # Cross-check the n0 mechanism in the fab: the same physical defect
    # footprint covers more logic on a denser layout.
    chip = config.make_chip()
    print("fab cross-check (same chip, denser layout = relatively larger defects):")
    for shrink in (1.0, 0.7, 0.5):
        recipe = ProcessRecipe(
            defect_density=1.2,
            clustering=0.5,
            mean_defect_radius=0.02 / shrink,
            activation_probability=0.7,
        )
        lot = fabricate_lot(chip, recipe, 400, seed=5)
        print(
            f"  shrink {shrink:.1f}x: empirical n0 = {lot.empirical_n0():5.2f}, "
            f"yield = {lot.empirical_yield():.1%}"
        )
    print()
    print("conclusion: finer features RELAX the coverage requirement —")
    print("the paper's closing prediction, quantified.")


if __name__ == "__main__":
    main()
