"""Quickstart: from process data to a fault-coverage requirement.

The paper's headline use case in ten lines: you know (or have estimated)
your chip's yield and its average fault count per defective chip; the
model tells you what stuck-at coverage your test program needs for a
target outgoing quality level.

Run:  python examples/quickstart.py
"""

from repro import QualityModel


def main() -> None:
    # The paper's Section 7 chip: ~25 000 transistors, 7 percent yield,
    # n0 = 8 calibrated from production first-fail data.
    model = QualityModel(yield_=0.07, n0=8.0)

    print("Chip: yield = 7%, n0 = 8 (faults per defective chip)\n")

    for target in (0.01, 0.005, 0.001):
        needed = model.required_coverage(target)
        wadsack = model.wadsack_required_coverage(target)
        print(
            f"target reject rate {target:>6.3f}: "
            f"need {needed:6.1%} coverage "
            f"(prior art demanded {wadsack:6.1%})"
        )

    print()
    # What quality does an existing 90-percent-coverage test set deliver?
    coverage = 0.90
    print(
        f"a {coverage:.0%}-coverage test set ships "
        f"{model.escapes_per_million(coverage):,.0f} bad chips per million"
    )
    print(
        f"fraction of production passing the tests: "
        f"{model.shipped_fraction(coverage):.1%}"
    )


if __name__ == "__main__":
    main()
